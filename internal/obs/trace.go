package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity is the number of completed spans a new
// registry's ring retains.
const DefaultTraceCapacity = 256

// Trace is one completed span as stored in the ring. TraceID groups
// every span of one causal tree (a query, a request); ParentID is the
// SpanID of the span that opened this one, empty for roots. Remote
// parents (a client on another process, propagated via the W3C
// traceparent header) appear as a ParentID that no local span carries.
type Trace struct {
	Name     string            `json:"name"`
	TraceID  string            `json:"trace_id,omitempty"`
	SpanID   string            `json:"span_id,omitempty"`
	ParentID string            `json:"parent_id,omitempty"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// idState generates process-unique trace/span IDs: a random prefix
// drawn once per process XOR-folded with an atomic counter, so IDs
// never collide within a process and collide across processes only if
// the 64-bit prefixes do.
var idState struct {
	prefix uint64
	ctr    atomic.Uint64
}

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		idState.prefix = binary.LittleEndian.Uint64(b[:])
	} else {
		idState.prefix = uint64(time.Now().UnixNano())
	}
}

// newSpanID returns a 16-hex-char (8-byte) span ID.
func newSpanID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], idState.prefix^(idState.ctr.Add(1)*0x9e3779b97f4a7c15))
	return hex.EncodeToString(b[:])
}

// newTraceID returns a 32-hex-char (16-byte) W3C-shaped trace ID.
func newTraceID() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], idState.prefix)
	binary.BigEndian.PutUint64(b[8:], idState.prefix^(idState.ctr.Add(1)*0x9e3779b97f4a7c15))
	return hex.EncodeToString(b[:])
}

// Span is an in-flight trace region. Spans are created by
// Recorder.StartSpan (roots) or StartSpanCtx (children inheriting the
// parent's trace), and finished with End, which pushes a Trace into
// the owning registry's ring. A nil *Span (what the no-op recorder
// returns) is valid: every method is a nil-safe no-op, so call sites
// never branch on whether tracing is live.
//
// A span belongs to the goroutine that started it; SetAttr and End
// must not race with each other.
type Span struct {
	rec      *Registry
	name     string
	start    time.Time
	attrs    []string
	traceID  string
	spanID   string
	parentID string
	// sampled is false for the sentinel spans an unsampled root hands
	// to its descendants: they carry no identity and record nothing,
	// but keep the descendants from re-rolling the sampling decision.
	sampled bool
	ended   bool
}

// TraceID returns the span's trace identity ("" for nil/unsampled).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SpanID returns the span's own identity ("" for nil/unsampled).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// ParentID returns the parent span's identity ("" for roots).
func (s *Span) ParentID() string {
	if s == nil {
		return ""
	}
	return s.parentID
}

// StartTime returns when the span was opened (zero for nil spans).
// Layers below the span opener use it to attribute wait time that
// elapsed before they first saw the work (e.g. executor queue wait).
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Sampled reports whether the span records into a registry.
func (s *Span) Sampled() bool { return s != nil && s.sampled && s.rec != nil }

// SetAttr attaches (or appends) a key/value attribute to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.rec == nil {
		return
	}
	s.attrs = append(s.attrs, key, value)
}

// End closes the span, records it in the trace ring and returns its
// duration. Calling End twice records once.
func (s *Span) End() time.Duration {
	return s.EndAt(time.Now())
}

// EndAt is End with an explicit end instant, for callers that learn a
// precise completion time after the fact (the executor stamps each
// outcome when its worker finishes; the span owner closes the span
// with that stamp so the recorded duration excludes result-collection
// overhead).
func (s *Span) EndAt(at time.Time) time.Duration {
	if s == nil || s.rec == nil {
		return 0
	}
	d := at.Sub(s.start)
	if d < 0 {
		d = 0
	}
	if s.ended {
		return d
	}
	s.ended = true
	var attrs map[string]string
	if len(s.attrs) >= 2 {
		attrs = make(map[string]string, len(s.attrs)/2)
		for i := 0; i+1 < len(s.attrs); i += 2 {
			attrs[s.attrs[i]] = s.attrs[i+1]
		}
	}
	s.rec.traces.push(Trace{
		Name: s.name, TraceID: s.traceID, SpanID: s.spanID, ParentID: s.parentID,
		Start: s.start, Duration: d, Attrs: attrs,
	})
	return d
}

// StartSpan implements Recorder: a root span opening a new trace,
// subject to the registry's sampling rate; labels become initial
// attributes.
func (r *Registry) StartSpan(name string, labels ...string) *Span {
	return r.startSpan(name, time.Now(), nil, labels)
}

// startSpan builds a span under parent (nil for roots). Roots consult
// the sampling rate; children inherit the parent's decision and trace.
func (r *Registry) startSpan(name string, start time.Time, parent *Span, labels []string) *Span {
	if parent != nil {
		// A parent carries the trace when it is sampled and has an
		// identity; remote placeholders (WithRemoteParent) qualify even
		// though they record nowhere themselves.
		if !parent.sampled || parent.traceID == "" {
			return &Span{} // sentinel: descendants stay unsampled
		}
		sp := &Span{
			rec: r, name: name, start: start, sampled: true,
			traceID: parent.traceID, spanID: newSpanID(), parentID: parent.spanID,
		}
		sp.attrs = append(sp.attrs, labels...)
		return sp
	}
	if !r.sampleRoot() {
		return &Span{}
	}
	sp := &Span{
		rec: r, name: name, start: start, sampled: true,
		traceID: newTraceID(), spanID: newSpanID(),
	}
	sp.attrs = append(sp.attrs, labels...)
	return sp
}

// SetTraceSample sets the fraction of root spans that are traced
// (clamped to [0, 1]; new registries sample everything). Descendants
// follow their root's decision, so a trace is always complete or
// absent, never partial.
func (r *Registry) SetTraceSample(rate float64) {
	if math.IsNaN(rate) || rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	r.sampleRate.Store(math.Float64bits(rate))
}

// sampleRoot decides whether a new root span is traced. The decision
// is a deterministic low-discrepancy sequence (golden-ratio rotation)
// rather than a PRNG, so a rate of 0.5 samples exactly every other
// root and test runs reproduce.
func (r *Registry) sampleRoot() bool {
	rate := math.Float64frombits(r.sampleRate.Load())
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	n := r.sampleSeq.Add(1)
	point := float64(n*0x9e3779b97f4a7c15>>11) / float64(1<<53)
	return point < rate
}

// traceRing is a fixed-capacity overwrite-oldest buffer of traces.
type traceRing struct {
	mu   sync.Mutex
	buf  []Trace
	next int
	full bool
}

func newTraceRing(capacity int) *traceRing {
	if capacity <= 0 {
		capacity = 1
	}
	return &traceRing{buf: make([]Trace, capacity)}
}

func (t *traceRing) push(tr Trace) {
	t.mu.Lock()
	t.buf[t.next] = tr
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// snapshot returns the retained traces, oldest first.
func (t *traceRing) snapshot() []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Trace(nil), t.buf[:t.next]...)
	}
	out := make([]Trace, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Traces returns the completed spans currently retained by the ring,
// oldest first.
func (r *Registry) Traces() []Trace { return r.traces.snapshot() }

// TraceByID returns the retained spans belonging to one trace, oldest
// first.
func (r *Registry) TraceByID(traceID string) []Trace {
	if traceID == "" {
		return nil
	}
	var out []Trace
	for _, tr := range r.traces.snapshot() {
		if tr.TraceID == traceID {
			out = append(out, tr)
		}
	}
	return out
}

// SetTraceCapacity resizes the ring to retain the last n spans,
// discarding anything currently held.
func (r *Registry) SetTraceCapacity(n int) {
	r.traces.mu.Lock()
	defer r.traces.mu.Unlock()
	if n <= 0 {
		n = 1
	}
	r.traces.buf = make([]Trace, n)
	r.traces.next = 0
	r.traces.full = false
}
