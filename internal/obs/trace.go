package obs

import (
	"sync"
	"time"
)

// DefaultTraceCapacity is the number of completed spans a new
// registry's ring retains.
const DefaultTraceCapacity = 256

// Trace is one completed span as stored in the ring.
type Trace struct {
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Span is an in-flight trace region. Spans are created by
// Recorder.StartSpan and finished with End, which pushes a Trace into
// the owning registry's ring. A nil *Span (what the no-op recorder
// returns) is valid: every method is a nil-safe no-op, so call sites
// never branch on whether tracing is live.
//
// A span belongs to the goroutine that started it; SetAttr and End
// must not race with each other.
type Span struct {
	rec   *Registry
	name  string
	start time.Time
	attrs []string
	ended bool
}

// SetAttr attaches (or appends) a key/value attribute to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.rec == nil {
		return
	}
	s.attrs = append(s.attrs, key, value)
}

// End closes the span, records it in the trace ring and returns its
// duration. Calling End twice records once.
func (s *Span) End() time.Duration {
	if s == nil || s.rec == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.ended {
		return d
	}
	s.ended = true
	var attrs map[string]string
	if len(s.attrs) >= 2 {
		attrs = make(map[string]string, len(s.attrs)/2)
		for i := 0; i+1 < len(s.attrs); i += 2 {
			attrs[s.attrs[i]] = s.attrs[i+1]
		}
	}
	s.rec.traces.push(Trace{Name: s.name, Start: s.start, Duration: d, Attrs: attrs})
	return d
}

// StartSpan implements Recorder: labels become initial attributes.
func (r *Registry) StartSpan(name string, labels ...string) *Span {
	sp := &Span{rec: r, name: name, start: time.Now()}
	if len(labels) > 0 {
		sp.attrs = append(sp.attrs, labels...)
	}
	return sp
}

// traceRing is a fixed-capacity overwrite-oldest buffer of traces.
type traceRing struct {
	mu   sync.Mutex
	buf  []Trace
	next int
	full bool
}

func newTraceRing(capacity int) *traceRing {
	if capacity <= 0 {
		capacity = 1
	}
	return &traceRing{buf: make([]Trace, capacity)}
}

func (t *traceRing) push(tr Trace) {
	t.mu.Lock()
	t.buf[t.next] = tr
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// snapshot returns the retained traces, oldest first.
func (t *traceRing) snapshot() []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Trace(nil), t.buf[:t.next]...)
	}
	out := make([]Trace, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Traces returns the completed spans currently retained by the ring,
// oldest first.
func (r *Registry) Traces() []Trace { return r.traces.snapshot() }

// SetTraceCapacity resizes the ring to retain the last n spans,
// discarding anything currently held.
func (r *Registry) SetTraceCapacity(n int) {
	r.traces.mu.Lock()
	defer r.traces.mu.Unlock()
	if n <= 0 {
		n = 1
	}
	r.traces.buf = make([]Trace, n)
	r.traces.next = 0
	r.traces.full = false
}
