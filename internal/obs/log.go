package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Logger emits structured JSON lines ({"time":..., "event":..., ...})
// to one writer, serialized so concurrent handlers never interleave
// output. A nil *Logger is a valid no-op, mirroring the Nop recorder.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogger wraps w; a nil writer yields a no-op logger.
func NewLogger(w io.Writer) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{w: w}
}

// Log writes one line. fields must not contain the keys "time" or
// "event" (they would be overwritten). Marshal failures drop the line:
// logging must never take the serving path down.
func (l *Logger) Log(event string, fields map[string]any) {
	if l == nil {
		return
	}
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	rec["time"] = time.Now().UTC().Format(time.RFC3339Nano)
	rec["event"] = event
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	data = append(data, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(data)
	l.mu.Unlock()
}
