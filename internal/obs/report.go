package obs

// TraceReport is the run-level tracing summary a command dumps at exit
// (mqorun/mqobench -trace-json): the SLO verdict, stage aggregates
// across every retained query ledger, and the per-query ledgers
// themselves. The traceguard CI gate consumes this file to assert that
// billed stages account for the wall-clock of every query.
type TraceReport struct {
	SLO         SLOReport        `json:"slo"`
	StageTotals []StageTotal     `json:"stage_totals"`
	Queries     []LedgerSnapshot `json:"queries"`
}

// TraceReport aggregates the registry's retained ledgers and SLO state
// into one report. Stage totals are merged across queries with the
// same deterministic ordering as LedgerSnapshot.StageTotals.
func (r *Registry) TraceReport() TraceReport {
	queries := r.Ledgers()
	// Merge per-query stage totals by flattening every ledger's entries
	// into one synthetic snapshot and reusing its merge.
	var all LedgerSnapshot
	for _, q := range queries {
		all.Entries = append(all.Entries, q.Entries...)
	}
	return TraceReport{
		SLO:         r.SLOReport(),
		StageTotals: all.StageTotals(),
		Queries:     queries,
	}
}
