package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func feedSLO(r *Registry, durs ...time.Duration) {
	for _, d := range durs {
		NewLedger(r, "t", "q").Close(d)
	}
}

func TestSLOReportUnconfigured(t *testing.T) {
	r := NewRegistry()
	feedSLO(r, time.Second)
	rep := r.SLOReport()
	if rep.Configured || !rep.Pass || rep.Samples != 0 {
		t.Fatalf("unconfigured report = %+v", rep)
	}
}

func TestSLOPassAndFailDeterministic(t *testing.T) {
	r := NewRegistry()
	r.SetSLO(SLO{Objective: 100 * time.Millisecond, Percentile: 0.9})
	// 10 samples: nine fast, one slow. p90 (nearest-rank idx 9 of 10
	// sorted) = 50ms → pass; the 200ms sample is 1 violation.
	for i := 0; i < 9; i++ {
		feedSLO(r, 50*time.Millisecond)
	}
	feedSLO(r, 200*time.Millisecond)
	rep := r.SLOReport()
	if !rep.Pass || rep.ObservedMS != 50 || rep.Violations != 1 || rep.Samples != 10 {
		t.Fatalf("pass report = %+v", rep)
	}
	// violFrac 0.1 / budget 0.1 = burn 1.0 (exactly on budget).
	if rep.BurnRate < 0.999 || rep.BurnRate > 1.001 {
		t.Fatalf("burn rate = %v, want 1.0", rep.BurnRate)
	}

	// Two more slow samples flip the p90 over the objective: nearest
	// rank ⌈0.9·12⌉ = 11th of twelve sorted samples = 300ms.
	feedSLO(r, 300*time.Millisecond, 300*time.Millisecond)
	rep = r.SLOReport()
	if rep.Pass {
		t.Fatalf("should fail: %+v", rep)
	}
	if rep.ObservedMS != 300 || rep.Violations != 3 {
		t.Fatalf("fail report = %+v", rep)
	}
	if got := r.CounterValue(metricSLOViolations, "slo", "query_latency"); got != 3 {
		t.Fatalf("%s = %v, want 3", metricSLOViolations, got)
	}
}

func TestSLOHandlerJSONAndStatus(t *testing.T) {
	r := NewRegistry()
	r.SetSLO(SLO{Objective: time.Nanosecond, Percentile: 0.5, Name: "lat"})
	feedSLO(r, time.Second)

	rw := httptest.NewRecorder()
	SLOHandler(r).ServeHTTP(rw, httptest.NewRequest("GET", "/debug/slo", nil))
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("failing SLO returned %d", rw.Code)
	}
	var rep SLOReport
	if err := json.Unmarshal(rw.Body.Bytes(), &rep); err != nil {
		t.Fatalf("handler body not JSON: %v\n%s", err, rw.Body.String())
	}
	if rep.Pass || rep.Name != "lat" || rep.Violations != 1 {
		t.Fatalf("handler report = %+v", rep)
	}

	// Generous objective passes with 200.
	r2 := NewRegistry()
	r2.SetSLO(SLO{Objective: time.Hour})
	feedSLO(r2, time.Second)
	rw = httptest.NewRecorder()
	SLOHandler(r2).ServeHTTP(rw, httptest.NewRequest("GET", "/debug/slo", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("passing SLO returned %d", rw.Code)
	}
}

func TestSLOPercentileAndNameDefaults(t *testing.T) {
	r := NewRegistry()
	r.SetSLO(SLO{Objective: time.Second, Percentile: 7}) // out of range
	rep := r.SLOReport()
	if rep.Percentile != 0.99 || rep.Name != "query_latency" {
		t.Fatalf("defaults not applied: %+v", rep)
	}
}
