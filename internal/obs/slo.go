package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// metricSLOViolations counts queries whose total latency exceeded the
// configured objective (catalog in README.md).
const metricSLOViolations = "mqo_slo_violations_total"

// maxSLOSamples bounds the retained latency samples the quantile is
// computed over. Violation counting stays exact past the cap (every
// sample is still compared to the objective); only the reported
// quantile degrades to "over the most recent maxSLOSamples queries".
const maxSLOSamples = 16384

// SLO is a latency objective: "the Percentile-th quantile of query
// latency stays at or under Objective". The error budget is the
// allowed violation fraction, 1 − Percentile; burn rate is how fast
// observed violations consume it (1.0 = exactly on budget).
type SLO struct {
	// Name labels the objective in metrics and reports (default
	// "query_latency").
	Name string `json:"name"`
	// Objective is the latency bound.
	Objective time.Duration `json:"objective_ns"`
	// Percentile is the quantile the bound applies to, in (0, 1)
	// (default 0.99).
	Percentile float64 `json:"percentile"`
}

// SLOReport is the deterministic pass/fail verdict served by
// /debug/slo.
type SLOReport struct {
	Configured  bool    `json:"configured"`
	Name        string  `json:"name,omitempty"`
	Percentile  float64 `json:"percentile,omitempty"`
	ObjectiveMS float64 `json:"objective_ms,omitempty"`
	// Samples is the total number of queries observed; Retained is how
	// many back the quantile (== Samples until maxSLOSamples).
	Samples  int `json:"samples"`
	Retained int `json:"retained"`
	// ObservedMS is the exact Percentile-th quantile over the retained
	// samples (0 when none).
	ObservedMS float64 `json:"observed_ms"`
	// Violations counts samples over the objective — exact, never
	// sampled down.
	Violations uint64 `json:"violations"`
	// BurnRate is the observed violation fraction divided by the error
	// budget (1 − Percentile): <1 under budget, >1 burning it.
	BurnRate float64 `json:"burn_rate"`
	// Pass is the verdict: the observed quantile meets the objective
	// (vacuously true with zero samples).
	Pass bool `json:"pass"`
}

// sloState is the engine behind one registry's SLO.
type sloState struct {
	mu         sync.Mutex
	cfg        SLO
	configured bool
	samples    []time.Duration // most recent maxSLOSamples, insertion order
	next       int             // ring cursor once len == maxSLOSamples
	total      uint64
	violations uint64
}

// SetSLO installs (or replaces) the registry's latency objective.
// Samples observed before the call are kept and re-judged against the
// new objective only for the quantile — the violation counter restarts,
// since "violation" is defined by the objective in force when the
// sample arrived.
func (r *Registry) SetSLO(s SLO) {
	if s.Name == "" {
		s.Name = "query_latency"
	}
	if !(s.Percentile > 0 && s.Percentile < 1) {
		s.Percentile = 0.99
	}
	r.slo.mu.Lock()
	r.slo.cfg = s
	r.slo.configured = s.Objective > 0
	r.slo.violations = 0
	r.slo.mu.Unlock()
}

// recordSLOSample feeds one query's total latency to the engine
// (called by Ledger.Close). No-op until SetSLO configures an
// objective.
func (r *Registry) recordSLOSample(total time.Duration) {
	st := &r.slo
	st.mu.Lock()
	if !st.configured {
		st.mu.Unlock()
		return
	}
	st.total++
	if len(st.samples) < maxSLOSamples {
		st.samples = append(st.samples, total)
	} else {
		st.samples[st.next] = total
		st.next = (st.next + 1) % maxSLOSamples
	}
	violated := total > st.cfg.Objective
	if violated {
		st.violations++
	}
	name := st.cfg.Name
	st.mu.Unlock()
	if violated {
		r.Add(metricSLOViolations, 1, "slo", name)
	}
}

// SLOReport computes the current verdict. The quantile is exact over
// the retained samples: sort a copy, index ⌈p·n⌉−1 (the nearest-rank
// method), no interpolation — two runs over the same workload produce
// byte-identical reports.
func (r *Registry) SLOReport() SLOReport {
	st := &r.slo
	st.mu.Lock()
	rep := SLOReport{
		Configured: st.configured,
		Samples:    int(st.total),
		Retained:   len(st.samples),
		Violations: st.violations,
		Pass:       true,
	}
	var cfg SLO
	var samples []time.Duration
	if st.configured {
		cfg = st.cfg
		samples = append([]time.Duration(nil), st.samples...)
	}
	st.mu.Unlock()
	if !rep.Configured {
		return rep
	}
	rep.Name = cfg.Name
	rep.Percentile = cfg.Percentile
	rep.ObjectiveMS = durMS(cfg.Objective)
	if n := len(samples); n > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		idx := int(float64(n)*cfg.Percentile+0.9999999) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		observed := samples[idx]
		rep.ObservedMS = durMS(observed)
		rep.Pass = observed <= cfg.Objective
	}
	if rep.Samples > 0 {
		violFrac := float64(rep.Violations) / float64(rep.Samples)
		rep.BurnRate = violFrac / (1 - cfg.Percentile)
	}
	return rep
}

func durMS(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// SLOHandler serves /debug/slo: the SLOReport as indented JSON. The
// verdict doubles as the HTTP status — 200 on pass (or unconfigured),
// 503 on fail — so probes need not parse the body.
func SLOHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rep := r.SLOReport()
		w.Header().Set("Content-Type", "application/json")
		if !rep.Pass {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
}
