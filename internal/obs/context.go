// Context propagation: spans and ledgers ride a context.Context down
// through the layers of a query (core → batch executor → replica pool
// → cache → predictor), so every layer can open child spans and charge
// the query's ledger without any layer knowing its callers. Across a
// process boundary the trace continues via the W3C traceparent header
// (TraceParent / WithRemoteParent), which is how a query traced on a
// client stitches to the spans an llmserve proxy and its upstreams
// record.
package obs

import (
	"context"
	"strings"
	"time"
)

type ctxKey int

const (
	spanKey ctxKey = iota
	ledgerKey
)

// ContextWithSpan returns ctx carrying sp as the current span. A nil
// ctx is treated as context.Background.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, sp)
}

// SpanFromContext returns the current span, nil when none is carried.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// StartSpanCtx opens a span on Active(rec) as a child of the span in
// ctx (a new root when ctx carries none) and returns ctx with the new
// span installed. The returned span may be nil (no-op recorder) or an
// unsampled sentinel; both are safe to use unconditionally.
func StartSpanCtx(ctx context.Context, rec Recorder, name string, labels ...string) (context.Context, *Span) {
	return StartSpanCtxAt(ctx, rec, name, time.Now(), labels...)
}

// StartSpanCtxAt is StartSpanCtx with an explicit start instant, for
// regions whose beginning predates the code that opens the span (queue
// wait: the executor opens the span at worker pickup but the wait
// began when the request was submitted).
func StartSpanCtxAt(ctx context.Context, rec Recorder, name string, start time.Time, labels ...string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	parent := SpanFromContext(ctx)
	// The parent's registry wins over Active(rec): a child must record
	// into the same ring as its trace, even from a layer (like the HTTP
	// client) that has no recorder of its own wired.
	r := (*Registry)(nil)
	if parent != nil && parent.rec != nil {
		r = parent.rec
	} else if reg, ok := Active(rec).(*Registry); ok {
		r = reg
	}
	if r == nil {
		return ctx, nil
	}
	sp := r.startSpan(name, start, parent, labels)
	return ContextWithSpan(ctx, sp), sp
}

// ContextWithLedger returns ctx carrying l as the current query ledger.
func ContextWithLedger(ctx context.Context, l *Ledger) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, ledgerKey, l)
}

// LedgerFromContext returns the current ledger, nil when none.
func LedgerFromContext(ctx context.Context) *Ledger {
	if ctx == nil {
		return nil
	}
	l, _ := ctx.Value(ledgerKey).(*Ledger)
	return l
}

// Charge adds one entry to the ledger carried by ctx (no-op without
// one): wall-clock and tokens attributed to stage. billed marks the
// winning/serial path — billed walls must tile the query span (the
// traceguard checks they cover ≥90% of it) and billed tokens must sum
// to the query's metered spend; retries and hedge losers charge with
// billed=false so they are visible but never double-counted.
func Charge(ctx context.Context, stage string, wall time.Duration, tokens int, billed bool) {
	if ctx == nil {
		return
	}
	LedgerFromContext(ctx).Charge(stage, wall, tokens, billed)
}

// W3C trace context propagation (https://www.w3.org/TR/trace-context/).

// TraceParentHeader is the W3C trace-context header name.
const TraceParentHeader = "traceparent"

// TraceParent renders the span's identity as a traceparent header
// value ("" when the span is nil or unsampled): version 00, sampled
// flag 01.
func TraceParent(sp *Span) string {
	if !sp.Sampled() {
		return ""
	}
	return "00-" + sp.traceID + "-" + sp.spanID + "-01"
}

// ParseTraceParent extracts the trace and span IDs from a traceparent
// header value. ok is false on anything malformed (wrong field count,
// wrong lengths, non-hex, all-zero IDs).
func ParseTraceParent(v string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return "", "", false
	}
	if !isLowerHex(parts[1]) || !isLowerHex(parts[2]) {
		return "", "", false
	}
	if strings.Trim(parts[1], "0") == "" || strings.Trim(parts[2], "0") == "" {
		return "", "", false
	}
	return parts[1], parts[2], true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// WithRemoteParent installs a placeholder parent span parsed from a
// traceparent header value, so spans opened under the returned context
// join the remote caller's trace (same trace ID, parent ID pointing at
// the caller's span). A malformed or empty header returns ctx
// unchanged — the next span simply roots a fresh local trace.
func WithRemoteParent(ctx context.Context, traceparent string) context.Context {
	traceID, spanID, ok := ParseTraceParent(traceparent)
	if !ok {
		return ctx
	}
	// The placeholder has no registry: it records nothing itself, it
	// only donates identity to children. sampled is true so children
	// honour the remote sampling decision (flag 01).
	return ContextWithSpan(ctx, &Span{traceID: traceID, spanID: spanID, sampled: true})
}
