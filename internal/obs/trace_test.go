package obs

import (
	"strconv"
	"testing"
	"time"
)

func TestSpanRecordsTrace(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("op", "mode", "plain")
	sp.SetAttr("node", "7")
	d := sp.End()
	if d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	traces := r.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Name != "op" || tr.Attrs["mode"] != "plain" || tr.Attrs["node"] != "7" {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.Duration < 0 || tr.Start.IsZero() {
		t.Fatalf("trace timing = %+v", tr)
	}
}

func TestSpanDoubleEndRecordsOnce(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("op")
	sp.End()
	sp.End()
	if got := len(r.Traces()); got != 1 {
		t.Fatalf("traces = %d, want 1", got)
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", "v")
	if sp.End() != 0 {
		t.Fatal("nil span End != 0")
	}
	// The nop recorder hands out nil spans.
	sp2 := Nop.StartSpan("x", "a", "b")
	if sp2 != nil {
		t.Fatalf("Nop.StartSpan = %v, want nil", sp2)
	}
	sp2.SetAttr("k", "v")
	sp2.End()
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRegistry()
	r.SetTraceCapacity(3)
	for i := 0; i < 5; i++ {
		sp := r.StartSpan("op" + strconv.Itoa(i))
		sp.End()
	}
	traces := r.Traces()
	if len(traces) != 3 {
		t.Fatalf("ring retained %d, want 3", len(traces))
	}
	for i, want := range []string{"op2", "op3", "op4"} {
		if traces[i].Name != want {
			t.Fatalf("traces[%d] = %q, want %q (oldest first)", i, traces[i].Name, want)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRegistry()
	r.SetTraceCapacity(10)
	r.StartSpan("a").End()
	r.StartSpan("b").End()
	traces := r.Traces()
	if len(traces) != 2 || traces[0].Name != "a" || traces[1].Name != "b" {
		t.Fatalf("traces = %+v", traces)
	}
}

func TestSetTraceCapacityDiscards(t *testing.T) {
	r := NewRegistry()
	r.StartSpan("old").End()
	r.SetTraceCapacity(4)
	if got := len(r.Traces()); got != 0 {
		t.Fatalf("resize kept %d traces, want 0", got)
	}
	r.SetTraceCapacity(0) // clamps to 1
	r.StartSpan("x").End()
	r.StartSpan("y").End()
	traces := r.Traces()
	if len(traces) != 1 || traces[0].Name != "y" {
		t.Fatalf("traces = %+v, want just y", traces)
	}
}

func TestPackageStartSpanUsesDefault(t *testing.T) {
	r := NewRegistry()
	SetDefault(r)
	defer SetDefault(nil)
	sp := StartSpan("pkg_op")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Fatalf("duration %v too short", d)
	}
	traces := r.Traces()
	if len(traces) != 1 || traces[0].Name != "pkg_op" {
		t.Fatalf("traces = %+v", traces)
	}
}
