package encode

import (
	"math"
	"sort"
	"strings"

	"repro/internal/xrand"
)

// Skip-gram with negative sampling (SGNS), the shallow embedding
// technique the paper cites alongside BoW as the classical way to
// encode node text attributes (Section II-A, [38]). Implemented from
// scratch: a frequency-cut vocabulary, a unigram^0.75 negative-sampling
// table, SGD over (center, context) pairs, and document encoding by
// averaging word vectors. Deterministic for a given seed.

// SGNSConfig tunes skip-gram training.
type SGNSConfig struct {
	// Dim is the embedding width (default 64).
	Dim int
	// Window is the max context distance (default 4).
	Window int
	// Negatives per positive pair (default 5).
	Negatives int
	// Epochs over the corpus (default 3).
	Epochs int
	// LR is the (linearly decayed) starting learning rate
	// (default 0.025).
	LR float64
	// MaxVocab caps the vocabulary at the most frequent words
	// (default 4096).
	MaxVocab int
	// Seed drives initialization, windowing and negative sampling.
	Seed uint64
}

// withDefaults fills zero fields.
func (c SGNSConfig) withDefaults() SGNSConfig {
	if c.Dim <= 0 {
		c.Dim = 64
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.Negatives <= 0 {
		c.Negatives = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 3
	}
	if c.LR <= 0 {
		c.LR = 0.025
	}
	if c.MaxVocab <= 0 {
		c.MaxVocab = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// SGNS is a trained skip-gram embedding model.
type SGNS struct {
	dim    int
	index  map[string]int
	vecs   [][]float64 // input vectors, one per vocabulary word
	freq   []float64   // corpus frequency p(w) per vocabulary word
	common []float64   // unit common direction of corpus doc embeddings
}

// NewSGNS trains skip-gram embeddings on the corpus.
func NewSGNS(corpus []string, cfg SGNSConfig) *SGNS {
	cfg = cfg.withDefaults()
	rng := xrand.New(cfg.Seed).SplitString("encode/sgns")

	// Vocabulary: most frequent words first.
	counts := map[string]int{}
	docs := make([][]string, len(corpus))
	for i, doc := range corpus {
		docs[i] = strings.Fields(doc)
		for _, w := range docs[i] {
			counts[w]++
		}
	}
	type wc struct {
		w string
		c int
	}
	all := make([]wc, 0, len(counts))
	for w, c := range counts {
		all = append(all, wc{w, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].w < all[j].w
	})
	if len(all) > cfg.MaxVocab {
		all = all[:cfg.MaxVocab]
	}
	index := make(map[string]int, len(all))
	for i, e := range all {
		index[e.w] = i
	}
	v := len(all)
	m := &SGNS{dim: cfg.Dim, index: index, vecs: make([][]float64, v), freq: make([]float64, v)}
	if v == 0 {
		return m
	}
	var corpusTokens float64
	for _, e := range all {
		corpusTokens += float64(e.c)
	}
	for i, e := range all {
		m.freq[i] = float64(e.c) / corpusTokens
	}

	// Negative-sampling table: unigram frequency ^ 0.75.
	const tableSize = 1 << 16
	table := make([]int32, tableSize)
	var powSum float64
	pows := make([]float64, v)
	for i, e := range all {
		pows[i] = math.Pow(float64(e.c), 0.75)
		powSum += pows[i]
	}
	{
		i, cum := 0, pows[0]/powSum
		for t := 0; t < tableSize; t++ {
			table[t] = int32(i)
			if float64(t)/tableSize > cum && i < v-1 {
				i++
				cum += pows[i] / powSum
			}
		}
	}

	// Init: small random input vectors, zero output vectors.
	out := make([][]float64, v)
	for i := range m.vecs {
		vec := make([]float64, cfg.Dim)
		for d := range vec {
			vec[d] = (rng.Float64() - 0.5) / float64(cfg.Dim)
		}
		m.vecs[i] = vec
		out[i] = make([]float64, cfg.Dim)
	}

	// Encode documents as word-ID sequences once, subsampling frequent
	// words (word2vec's t-threshold): without this, ubiquitous filler
	// words dominate every context window and all vectors collapse
	// into one direction.
	const subsampleT = 1e-3
	keepProb := make([]float64, v)
	for i := range keepProb {
		keepProb[i] = 1
		if f := m.freq[i]; f > subsampleT {
			keepProb[i] = math.Sqrt(subsampleT / f)
		}
	}
	ids := make([][]int32, len(docs))
	totalTokens := 0
	for i, doc := range docs {
		seq := make([]int32, 0, len(doc))
		for _, w := range doc {
			if id, ok := index[w]; ok && rng.Float64() < keepProb[id] {
				seq = append(seq, int32(id))
			}
		}
		ids[i] = seq
		totalTokens += len(seq)
	}

	sigmoid := func(x float64) float64 {
		if x > 8 {
			return 1
		}
		if x < -8 {
			return 0
		}
		return 1 / (1 + math.Exp(-x))
	}

	steps := 0
	totalSteps := cfg.Epochs * totalTokens
	grad := make([]float64, cfg.Dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, seq := range ids {
			for pos, center := range seq {
				steps++
				lr := cfg.LR * (1 - float64(steps)/float64(totalSteps+1))
				if lr < cfg.LR*0.01 {
					lr = cfg.LR * 0.01
				}
				win := 1 + rng.Intn(cfg.Window)
				lo, hi := pos-win, pos+win
				if lo < 0 {
					lo = 0
				}
				if hi >= len(seq) {
					hi = len(seq) - 1
				}
				cv := m.vecs[center]
				for p := lo; p <= hi; p++ {
					if p == pos {
						continue
					}
					for d := range grad {
						grad[d] = 0
					}
					// One positive + Negatives negative updates.
					for s := 0; s <= cfg.Negatives; s++ {
						var target int32
						var label float64
						if s == 0 {
							target, label = seq[p], 1
						} else {
							target = table[rng.Intn(tableSize)]
							if target == seq[p] {
								continue
							}
						}
						ov := out[target]
						var dot float64
						for d := range cv {
							dot += cv[d] * ov[d]
						}
						g := lr * (label - sigmoid(dot))
						for d := range cv {
							grad[d] += g * ov[d]
							ov[d] += g * cv[d]
						}
					}
					for d := range cv {
						cv[d] += grad[d]
					}
				}
			}
		}
	}

	// SIF common-component: every weighted-average document embedding
	// shares one dominant direction (the corpus mean); subtracting it
	// is what exposes the class-discriminative residual. Approximate
	// the first principal component by the normalized corpus mean.
	mean := make([]float64, cfg.Dim)
	for _, doc := range corpus {
		raw := m.rawEncode(doc)
		for d := range mean {
			mean[d] += raw[d]
		}
	}
	normalize(mean)
	m.common = mean
	return m
}

// Dim returns the embedding width.
func (m *SGNS) Dim() int { return m.dim }

// Vector returns the embedding of a word, or nil if out of vocabulary.
// The returned slice is shared; callers must not modify it.
func (m *SGNS) Vector(word string) []float64 {
	if id, ok := m.index[word]; ok {
		return m.vecs[id]
	}
	return nil
}

// Encode embeds a document as the L2-normalized SIF-weighted average
// of its word vectors: each word is weighted a/(a+p(w)) so rare,
// informative words dominate ubiquitous filler (Arora et al.'s smooth
// inverse frequency). Out-of-vocabulary words are skipped; an all-OOV
// document encodes to the zero vector.
func (m *SGNS) Encode(text string) []float64 {
	sum := m.rawEncode(text)
	if m.common != nil {
		var proj float64
		for d := range sum {
			proj += sum[d] * m.common[d]
		}
		for d := range sum {
			sum[d] -= proj * m.common[d]
		}
	}
	normalize(sum)
	return sum
}

// rawEncode is the SIF-weighted average before common-component
// removal and normalization.
func (m *SGNS) rawEncode(text string) []float64 {
	const a = 1e-3
	sum := make([]float64, m.dim)
	var total float64
	for _, w := range strings.Fields(text) {
		id, ok := m.index[w]
		if !ok {
			continue
		}
		weight := a / (a + m.freq[id])
		vec := m.vecs[id]
		for d := range sum {
			sum[d] += weight * vec[d]
		}
		total += weight
	}
	if total > 0 {
		for d := range sum {
			sum[d] /= total
		}
	}
	return sum
}

// Similarity is the cosine similarity of two documents under the
// embedding.
func (m *SGNS) Similarity(a, b string) float64 {
	return Cosine(m.Encode(a), m.Encode(b))
}
