// Package encode turns node text into numeric features.
//
// The paper encodes text attributes t_i into input features x_i via
// shallow methods such as Bag-of-Words before feeding a surrogate MLP
// classifier (Section V-A), and the SNS baseline ranks neighbors by
// SimCSE text similarity. This package supplies both: dense BoW /
// TF-IDF encoders with a capped feature dimension for the surrogate
// classifier, and sparse TF-IDF cosine similarity as the offline
// substitute for SimCSE.
package encode

import (
	"math"
	"sort"
	"strings"
)

// Encoder maps text to fixed-size feature vectors. Construct one with
// NewBoW or NewTFIDF over a corpus; Encode then embeds any text into
// the corpus vocabulary space.
type Encoder struct {
	index map[string]int // word -> feature dimension
	words []string       // dimension -> word
	idf   []float64      // nil for plain BoW
}

// Dims returns the feature dimensionality.
func (e *Encoder) Dims() int { return len(e.words) }

// Word returns the vocabulary word mapped to dimension d.
func (e *Encoder) Word(d int) string { return e.words[d] }

// vocabOf selects the maxFeatures most document-frequent words of the
// corpus, breaking ties lexicographically for determinism.
func vocabOf(corpus []string, maxFeatures int) ([]string, map[string]int, []int) {
	df := map[string]int{}
	for _, doc := range corpus {
		seen := map[string]bool{}
		for _, w := range strings.Fields(doc) {
			if !seen[w] {
				seen[w] = true
				df[w]++
			}
		}
	}
	words := make([]string, 0, len(df))
	for w := range df {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		if df[words[i]] != df[words[j]] {
			return df[words[i]] > df[words[j]]
		}
		return words[i] < words[j]
	})
	if maxFeatures > 0 && len(words) > maxFeatures {
		words = words[:maxFeatures]
	}
	index := make(map[string]int, len(words))
	freqs := make([]int, len(words))
	for i, w := range words {
		index[w] = i
		freqs[i] = df[w]
	}
	return words, index, freqs
}

// NewBoW builds a bag-of-words encoder over the corpus, keeping at most
// maxFeatures dimensions (0 keeps everything).
func NewBoW(corpus []string, maxFeatures int) *Encoder {
	words, index, _ := vocabOf(corpus, maxFeatures)
	return &Encoder{index: index, words: words}
}

// NewTFIDF builds a TF-IDF encoder over the corpus, keeping at most
// maxFeatures dimensions (0 keeps everything). IDF uses the smoothed
// formulation log((1+N)/(1+df)) + 1.
func NewTFIDF(corpus []string, maxFeatures int) *Encoder {
	words, index, freqs := vocabOf(corpus, maxFeatures)
	n := float64(len(corpus))
	idf := make([]float64, len(words))
	for i, df := range freqs {
		idf[i] = math.Log((1+n)/(1+float64(df))) + 1
	}
	return &Encoder{index: index, words: words, idf: idf}
}

// Encode embeds text into the encoder's feature space as an
// L2-normalized dense vector. Unknown words are ignored.
func (e *Encoder) Encode(text string) []float64 {
	v := make([]float64, len(e.words))
	for _, w := range strings.Fields(text) {
		if d, ok := e.index[w]; ok {
			v[d]++
		}
	}
	if e.idf != nil {
		for d := range v {
			v[d] *= e.idf[d]
		}
	}
	normalize(v)
	return v
}

// EncodeSparse embeds text as a sparse L2-normalized vector, suitable
// for similarity over large vocabularies.
func (e *Encoder) EncodeSparse(text string) map[int]float64 {
	v := map[int]float64{}
	for _, w := range strings.Fields(text) {
		if d, ok := e.index[w]; ok {
			v[d]++
		}
	}
	if e.idf != nil {
		for d := range v {
			v[d] *= e.idf[d]
		}
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for d := range v {
			v[d] /= norm
		}
	}
	return v
}

func normalize(v []float64) {
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm == 0 {
		return
	}
	norm = math.Sqrt(norm)
	for i := range v {
		v[i] /= norm
	}
}

// Cosine returns the cosine similarity of two dense vectors. Vectors of
// different lengths compare over the shorter prefix; zero vectors score
// zero.
func Cosine(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var dot, na, nb float64
	for i := 0; i < n; i++ {
		dot += a[i] * b[i]
	}
	for _, x := range a {
		na += x * x
	}
	for _, x := range b {
		nb += x * x
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// CosineSparse returns the cosine similarity of two sparse vectors.
func CosineSparse(a, b map[int]float64) float64 {
	if len(b) < len(a) {
		a, b = b, a
	}
	var dot, na, nb float64
	for d, x := range a {
		na += x * x
		if y, ok := b[d]; ok {
			dot += x * y
		}
	}
	for _, y := range b {
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Similarity scores two texts with TF-IDF cosine in the encoder's
// space. It is the repository's stand-in for SimCSE sentence
// similarity: on class-vocabulary text, lexical overlap is a faithful
// proxy for semantic similarity.
func (e *Encoder) Similarity(a, b string) float64 {
	return CosineSparse(e.EncodeSparse(a), e.EncodeSparse(b))
}
