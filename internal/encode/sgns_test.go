package encode

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/tag"
	"repro/internal/xrand"
)

// sgnsCorpus builds a small class-structured corpus from the Cora
// generator so embeddings have real signal to find.
func sgnsCorpus(t testing.TB, nodes int) (*tag.Graph, []string) {
	t.Helper()
	spec, err := tag.SmallSpec("cora", nodes)
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, 21, tag.Options{})
	corpus := make([]string, g.NumNodes())
	for i := range corpus {
		corpus[i] = g.Text(tag.NodeID(i))
	}
	return g, corpus
}

func TestSGNSSameClassCloserThanCrossClass(t *testing.T) {
	g, corpus := sgnsCorpus(t, 500)
	m := NewSGNS(corpus, SGNSConfig{Dim: 48, Epochs: 3, Seed: 3})

	// Compare mean cosine similarity within vs across classes over
	// clear-text (saturated, non-noisy) nodes.
	rng := xrand.New(7)
	var same, cross float64
	var sameN, crossN int
	clear := make([]tag.NodeID, 0, g.NumNodes())
	for i, n := range g.Nodes {
		if !n.Noisy && n.Ambiguity < 0.3 {
			clear = append(clear, tag.NodeID(i))
		}
	}
	for trial := 0; trial < 600; trial++ {
		a := clear[rng.Intn(len(clear))]
		b := clear[rng.Intn(len(clear))]
		if a == b {
			continue
		}
		sim := Cosine(m.Encode(corpus[a]), m.Encode(corpus[b]))
		if g.Nodes[a].Label == g.Nodes[b].Label {
			same += sim
			sameN++
		} else {
			cross += sim
			crossN++
		}
	}
	if sameN == 0 || crossN == 0 {
		t.Fatal("degenerate sampling")
	}
	sameMean, crossMean := same/float64(sameN), cross/float64(crossN)
	if sameMean <= crossMean+0.03 {
		t.Errorf("same-class similarity %.3f not above cross-class %.3f", sameMean, crossMean)
	}
}

func TestSGNSDeterministic(t *testing.T) {
	_, corpus := sgnsCorpus(t, 200)
	a := NewSGNS(corpus, SGNSConfig{Dim: 16, Epochs: 1, Seed: 9})
	b := NewSGNS(corpus, SGNSConfig{Dim: 16, Epochs: 1, Seed: 9})
	va, vb := a.Encode(corpus[0]), b.Encode(corpus[0])
	for d := range va {
		if va[d] != vb[d] {
			t.Fatalf("dim %d diverged across identical trainings: %v vs %v", d, va[d], vb[d])
		}
	}
}

func TestSGNSEncodeProperties(t *testing.T) {
	_, corpus := sgnsCorpus(t, 200)
	m := NewSGNS(corpus, SGNSConfig{Dim: 16, Epochs: 1, Seed: 5})
	v := m.Encode(corpus[3])
	if len(v) != 16 {
		t.Fatalf("Encode dim = %d, want 16", len(v))
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-9 {
		t.Errorf("encoded vector norm %v, want 1", math.Sqrt(norm))
	}
	// All-OOV text encodes to zero without panicking.
	zero := m.Encode("zzzz qqqq totally-unknown-words")
	for _, x := range zero {
		if x != 0 {
			t.Fatal("OOV text should encode to the zero vector")
		}
	}
	if m.Vector("no-such-word") != nil {
		t.Error("OOV Vector should be nil")
	}
	if sim := m.Similarity(corpus[3], corpus[3]); math.Abs(sim-1) > 1e-9 {
		t.Errorf("self-similarity %v, want 1", sim)
	}
}

func TestSGNSVocabCap(t *testing.T) {
	corpus := make([]string, 50)
	for i := range corpus {
		corpus[i] = fmt.Sprintf("common word%d word%d rare%d", i%3, i%5, i)
	}
	m := NewSGNS(corpus, SGNSConfig{Dim: 8, Epochs: 1, MaxVocab: 9, Seed: 2})
	if m.Vector("common") == nil {
		t.Error("most frequent word missing from capped vocabulary")
	}
	inVocab := 0
	for i := range corpus {
		if m.Vector(fmt.Sprintf("rare%d", i)) != nil {
			inVocab++
		}
	}
	if inVocab > 9 {
		t.Errorf("%d rare words in a 9-word vocabulary", inVocab)
	}
}

func TestSGNSEmptyCorpus(t *testing.T) {
	m := NewSGNS(nil, SGNSConfig{Dim: 8, Seed: 1})
	if v := m.Encode("anything"); len(v) != 8 {
		t.Fatalf("empty-corpus Encode dim = %d, want 8", len(v))
	}
}
