package encode

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tag"
)

var corpus = []string{
	"graph neural networks for node classification",
	"node classification with language models",
	"large language models as predictors",
	"database query optimization survey",
	"query optimization for relational database systems",
}

func TestBoWVocabulary(t *testing.T) {
	e := NewBoW(corpus, 0)
	if e.Dims() == 0 {
		t.Fatal("empty vocabulary")
	}
	// Every distinct corpus word should be a dimension when uncapped.
	for _, w := range []string{"graph", "database", "optimization"} {
		v := e.Encode(w)
		sum := 0.0
		for _, x := range v {
			sum += x
		}
		if sum == 0 {
			t.Fatalf("word %q not in uncapped vocabulary", w)
		}
	}
}

func TestMaxFeaturesCap(t *testing.T) {
	e := NewBoW(corpus, 3)
	if e.Dims() != 3 {
		t.Fatalf("Dims() = %d, want 3", e.Dims())
	}
}

func TestCapKeepsMostFrequent(t *testing.T) {
	// Exactly eight corpus words appear in two documents; the rest
	// appear once. A cap of 8 must retain precisely the frequent ones.
	e := NewBoW(corpus, 8)
	kept := map[string]bool{}
	for d := 0; d < e.Dims(); d++ {
		kept[e.Word(d)] = true
	}
	for _, w := range []string{"node", "classification", "optimization", "query", "database", "language", "models", "for"} {
		if !kept[w] {
			t.Fatalf("frequent word %q evicted by cap; kept: %v", w, kept)
		}
	}
}

func TestEncodeNormalized(t *testing.T) {
	e := NewTFIDF(corpus, 0)
	v := e.Encode(corpus[0])
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("encoded vector norm^2 = %v, want 1", norm)
	}
}

func TestEncodeUnknownWordsZero(t *testing.T) {
	e := NewBoW(corpus, 0)
	v := e.Encode("zzz yyy xxx")
	for _, x := range v {
		if x != 0 {
			t.Fatal("unknown-word text should encode to zero vector")
		}
	}
}

func TestCosineIdentity(t *testing.T) {
	a := []float64{1, 2, 3}
	if got := Cosine(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Cosine(a,a) = %v, want 1", got)
	}
}

func TestCosineOrthogonal(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Fatalf("orthogonal cosine = %v, want 0", got)
	}
}

func TestCosineZeroVector(t *testing.T) {
	if got := Cosine([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("zero-vector cosine = %v, want 0", got)
	}
}

func TestCosineSparseMatchesDense(t *testing.T) {
	e := NewTFIDF(corpus, 0)
	a, b := corpus[0], corpus[1]
	dense := Cosine(e.Encode(a), e.Encode(b))
	sparse := CosineSparse(e.EncodeSparse(a), e.EncodeSparse(b))
	if math.Abs(dense-sparse) > 1e-9 {
		t.Fatalf("dense %v vs sparse %v cosine mismatch", dense, sparse)
	}
}

func TestSimilaritySemantics(t *testing.T) {
	e := NewTFIDF(corpus, 0)
	same := e.Similarity("database query optimization survey", "query optimization for relational database systems")
	diff := e.Similarity("database query optimization survey", "graph neural networks for node classification")
	if same <= diff {
		t.Fatalf("related texts sim %v should exceed unrelated %v", same, diff)
	}
}

func TestSimilarityRange(t *testing.T) {
	e := NewTFIDF(corpus, 0)
	f := func(a, b string) bool {
		s := e.Similarity(a, b)
		return s >= -1e-9 && s <= 1+1e-9 && !math.IsNaN(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCosineSymmetric(t *testing.T) {
	f := func(a, b []float64) bool {
		// Bound magnitudes to avoid overflow in the dot product; the
		// property under test is symmetry, not overflow handling.
		for i := range a {
			a[i] = math.Tanh(a[i])
		}
		for i := range b {
			b[i] = math.Tanh(b[i])
		}
		x, y := Cosine(a, b), Cosine(b, a)
		if math.IsNaN(x) || math.IsNaN(y) {
			return false
		}
		return math.Abs(x-y) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTFIDFDownweightsUbiquitousWords(t *testing.T) {
	// A word in every document gets minimal IDF; a rare word gets more.
	docs := []string{
		"common rareone", "common raretwo", "common rarethree",
	}
	e := NewTFIDF(docs, 0)
	vCommon := e.EncodeSparse("common")
	vRare := e.EncodeSparse("rareone")
	var wc, wr float64
	for _, x := range vCommon {
		wc = x
	}
	for _, x := range vRare {
		wr = x
	}
	// Single-word texts normalize to weight 1 regardless; compare via a
	// mixed document instead.
	mixed := e.EncodeSparse("common rareone")
	var raw []float64
	for _, x := range mixed {
		raw = append(raw, x)
	}
	if len(raw) != 2 {
		t.Fatalf("expected 2 nonzero dims, got %d", len(raw))
	}
	lo, hi := math.Min(raw[0], raw[1]), math.Max(raw[0], raw[1])
	if !(lo < hi) {
		t.Fatalf("IDF weighting had no effect: %v vs %v (wc=%v wr=%v)", lo, hi, wc, wr)
	}
}

// On generated TAG text, same-class nodes must be more similar than
// cross-class nodes on average — the property SNS depends on.
func TestClassSimilarityOnTAG(t *testing.T) {
	spec, err := tag.SmallSpec("cora", 400)
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, 5, tag.Options{})
	texts := make([]string, g.NumNodes())
	for i := range texts {
		texts[i] = g.Text(tag.NodeID(i))
	}
	e := NewTFIDF(texts, 0)

	var sameSum, diffSum float64
	var sameN, diffN int
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			s := e.Similarity(texts[i], texts[j])
			if g.Nodes[i].Label == g.Nodes[j].Label {
				sameSum += s
				sameN++
			} else {
				diffSum += s
				diffN++
			}
		}
	}
	if sameN == 0 || diffN == 0 {
		t.Skip("degenerate sample")
	}
	if sameSum/float64(sameN) <= diffSum/float64(diffN) {
		t.Fatalf("same-class similarity %.4f not above cross-class %.4f",
			sameSum/float64(sameN), diffSum/float64(diffN))
	}
}
