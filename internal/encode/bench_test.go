package encode

import (
	"fmt"
	"testing"
)

// benchCorpus synthesizes a deterministic corpus shaped like node
// texts (~100 words each).
func benchCorpus(n int) []string {
	out := make([]string, n)
	for i := range out {
		s := ""
		for w := 0; w < 100; w++ {
			s += fmt.Sprintf("word%d ", (i*31+w*7)%500)
		}
		out[i] = s
	}
	return out
}

// BenchmarkNewTFIDF measures vocabulary construction over a
// 1,000-document corpus (done once per dataset).
func BenchmarkNewTFIDF(b *testing.B) {
	corpus := benchCorpus(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if NewTFIDF(corpus, 256) == nil {
			b.Fatal("nil encoder")
		}
	}
}

// BenchmarkEncode measures per-document encoding (done once per node
// by the surrogate classifier).
func BenchmarkEncode(b *testing.B) {
	corpus := benchCorpus(200)
	enc := NewTFIDF(corpus, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(enc.Encode(corpus[i%len(corpus)])) == 0 {
			b.Fatal("empty vector")
		}
	}
}
