package mqo

import (
	"time"

	"repro/internal/promptcache"
)

// PromptCache is the persistent, content-addressed prompt→response
// cache: sharded append-only segment files with checksummed records
// (crash-safe — a kill -9 mid-append loses at most the record being
// written), LRU/TTL eviction under a byte budget, and atomic
// compaction. Wire one into ExecConfig.Disk, or set Options.CacheDir
// and let Optimize manage it.
type PromptCache = promptcache.Cache

// PromptCacheConfig tunes OpenPromptCache (shards, byte budget, TTL).
type PromptCacheConfig = promptcache.Config

// PromptCacheStats snapshots cache activity: hits, misses, evictions,
// live entries and bytes. The same numbers are exported as the
// mqo_cache_* metrics.
type PromptCacheStats = promptcache.Stats

// CacheKey is the 32-byte content address of one (namespace, prompt)
// pair.
type CacheKey = promptcache.Key

// OpenPromptCache creates or reopens a persistent prompt cache rooted
// at dir, replaying its segment files and truncating any torn tail
// left by a crash.
func OpenPromptCache(dir string, cfg PromptCacheConfig) (*PromptCache, error) {
	return promptcache.Open(dir, cfg)
}

// CacheNamespace derives the cache namespace for a predictor: its
// identity (model name plus answer-function seed when exposed) and the
// prompt-template version — exactly the axes on which cached answers
// invalidate.
func CacheNamespace(p Predictor) string { return promptcache.Namespace(p) }

// CacheKeyOf addresses one prompt within one namespace.
func CacheKeyOf(namespace, promptText string) CacheKey {
	return promptcache.KeyOf(namespace, promptText)
}

// CachingPredictor fronts any predictor with a persistent cache: hits
// answer from disk, misses query the inner predictor and persist the
// answer. llmserve uses this server-side so repeated prompts cost zero
// predictor work across restarts.
func CachingPredictor(p Predictor, c *PromptCache) Predictor {
	return promptcache.Wrap(p, c)
}

// DefaultCacheTTL is a reasonable expiry for long-lived caches fronting
// live backends; simulator-backed caches can use 0 (never expire).
const DefaultCacheTTL = 30 * 24 * time.Hour
