package mqo

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/llm"
)

// TestOptimizeEmitsMetrics runs the pipeline with a registry wired via
// Options.Obs and checks the counters against the report the run
// itself returned: the metrics must be a faithful second account of
// the same execution.
func TestOptimizeEmitsMetrics(t *testing.T) {
	w, p := smallWorkload(t, 31)
	reg := NewRegistry()
	rep, err := Optimize(w, KHopRandom{K: 1}, p, Options{Obs: reg})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}

	if got := reg.CounterValue("mqo_queries_total", "mode", "plain"); got != float64(len(rep.Results.Pred)) {
		t.Errorf("mqo_queries_total = %v, want %d", got, len(rep.Results.Pred))
	}
	if got := reg.CounterValue("mqo_input_tokens_total", "mode", "plain"); got != float64(rep.Results.Meter.InputTokens()) {
		t.Errorf("mqo_input_tokens_total = %v, want %d", got, rep.Results.Meter.InputTokens())
	}
	if got := reg.CounterValue("mqo_output_tokens_total", "mode", "plain"); got != float64(rep.Results.Meter.OutputTokens()) {
		t.Errorf("mqo_output_tokens_total = %v, want %d", got, rep.Results.Meter.OutputTokens())
	}
	if got := reg.CounterValue("mqo_queries_equipped_total", "mode", "plain"); got != float64(rep.Results.Equipped) {
		t.Errorf("mqo_queries_equipped_total = %v, want %d", got, rep.Results.Equipped)
	}
	if got := reg.CounterValue("mqo_optimize_runs_total", "method", "1-hop random"); got != 1 {
		t.Errorf("mqo_optimize_runs_total = %v, want 1", got)
	}
	if got := reg.HistogramCount("mqo_query_duration_seconds", "mode", "plain"); got != uint64(len(rep.Results.Pred)) {
		t.Errorf("latency observations = %d, want %d", got, len(rep.Results.Pred))
	}

	// The run must also have left spans in the trace ring: one
	// mqo.optimize plus one core.query per executed query.
	var optimizeSpans, querySpans int
	for _, tr := range reg.Traces() {
		switch tr.Name {
		case "mqo.optimize":
			optimizeSpans++
		case "core.query":
			querySpans++
		}
	}
	if optimizeSpans != 1 {
		t.Errorf("mqo.optimize spans = %d, want 1", optimizeSpans)
	}
	if want := len(rep.Results.Pred); querySpans == 0 || querySpans > want {
		t.Errorf("core.query spans = %d, want in (0, %d]", querySpans, want)
	}
}

func TestOptimizeBoostEmitsRoundMetrics(t *testing.T) {
	w, p := smallWorkload(t, 32)
	reg := NewRegistry()
	rep, err := Optimize(w, KHopRandom{K: 1}, p, Options{Boost: true, Obs: reg})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if got := reg.CounterValue("mqo_boost_rounds_total"); got != float64(rep.Results.Rounds) {
		t.Errorf("mqo_boost_rounds_total = %v, want %d", got, rep.Results.Rounds)
	}
	if got := reg.CounterValue("mqo_queries_total", "mode", "boost"); got != float64(rep.Results.Meter.Queries()) {
		t.Errorf("mqo_queries_total{boost} = %v, want %d", got, rep.Results.Meter.Queries())
	}
	if got := reg.CounterValue("mqo_pseudo_label_uses_total"); got != float64(rep.Results.PseudoLabelUses) {
		t.Errorf("mqo_pseudo_label_uses_total = %v, want %d", got, rep.Results.PseudoLabelUses)
	}
	if got := reg.GaugeValue("mqo_boost_pending_queries"); got != 0 {
		t.Errorf("mqo_boost_pending_queries settled at %v, want 0", got)
	}
}

// flakyPredictor fails the first attempt for every distinct prompt
// with a retryable 500, then delegates to the wrapped predictor.
type flakyPredictor struct {
	mu    sync.Mutex
	seen  map[string]bool
	inner Predictor
}

func (f *flakyPredictor) Name() string { return f.inner.Name() }
func (f *flakyPredictor) Query(prompt string) (Response, error) {
	f.mu.Lock()
	first := !f.seen[prompt]
	f.seen[prompt] = true
	f.mu.Unlock()
	if first {
		return Response{}, &llm.APIError{StatusCode: 500, Message: "transient"}
	}
	return f.inner.Query(prompt)
}

func TestBatchExecutorEmitsRetryMetrics(t *testing.T) {
	g, err := GenerateDatasetScaled("citeseer", 33, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorkload(g, 5, 12, 4, 33)
	ctx := w.Context()
	var reqs []BatchRequest
	for i, v := range w.Queries {
		reqs = append(reqs, BatchRequest{ID: fmt.Sprint(i), Prompt: BuildPrompt(ctx, v, nil, false)})
	}

	reg := NewRegistry()
	flaky := &flakyPredictor{seen: map[string]bool{}, inner: SerializePredictor(NewSim(GPT35(), g, 33))}
	exec, err := NewBatchExecutor(flaky, BatchConfig{Workers: 3, MaxRetries: 2, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Execute(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("batch failed %d requests: %+v", res.Failed, res)
	}

	if got := reg.CounterValue("mqo_batch_requests_total", "outcome", "ok"); got != float64(len(reqs)) {
		t.Errorf("requests{ok} = %v, want %d", got, len(reqs))
	}
	// Every prompt failed exactly once before succeeding.
	if got := reg.CounterValue("mqo_batch_retries_total"); got != float64(len(reqs)) {
		t.Errorf("retries = %v, want %d", got, len(reqs))
	}
	if got := reg.CounterValue("mqo_batch_tokens_total"); got != float64(res.TokensUsed) {
		t.Errorf("tokens = %v, want %d", got, res.TokensUsed)
	}
	// Two attempts per request: one failing, one succeeding.
	if got := reg.HistogramCount("mqo_batch_attempt_duration_seconds"); got != uint64(2*len(reqs)) {
		t.Errorf("attempt observations = %d, want %d", got, 2*len(reqs))
	}
	if got := reg.GaugeValue("mqo_batch_inflight"); got != 0 {
		t.Errorf("inflight settled at %v, want 0", got)
	}
}

// TestMetricsHandlerFacade serves an end-to-end registry over HTTP and
// checks the exposition is well-formed Prometheus text.
func TestMetricsHandlerFacade(t *testing.T) {
	w, p := smallWorkload(t, 34)
	reg := NewRegistry()
	if _, err := Optimize(w, Vanilla{}, p, Options{Obs: reg}); err != nil {
		t.Fatal(err)
	}
	rw := httptest.NewRecorder()
	MetricsHandler(reg).ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	body := rw.Body.String()
	if !strings.Contains(body, "# TYPE mqo_queries_total counter") {
		t.Errorf("exposition missing TYPE line:\n%.400s", body)
	}
	if !strings.Contains(body, `mqo_queries_total{mode="plain"}`) {
		t.Errorf("exposition missing series:\n%.400s", body)
	}
	if !strings.Contains(body, "mqo_query_duration_seconds_bucket") {
		t.Errorf("exposition missing histogram buckets:\n%.400s", body)
	}
}

// TestDefaultRecorderLightsUpPipeline checks SetDefaultRecorder routes
// un-wired runs into the registry, and that restoring the no-op stops
// recording.
func TestDefaultRecorderLightsUpPipeline(t *testing.T) {
	w, p := smallWorkload(t, 35)
	reg := NewRegistry()
	SetDefaultRecorder(reg)
	defer SetDefaultRecorder(nil)
	rep, err := Optimize(w, Vanilla{}, p, Options{}) // no Obs wired
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("mqo_queries_total", "mode", "plain"); got != float64(len(rep.Results.Pred)) {
		t.Errorf("default-routed mqo_queries_total = %v, want %d", got, len(rep.Results.Pred))
	}
	SetDefaultRecorder(nil)
	before := reg.CounterValue("mqo_queries_total", "mode", "plain")
	if _, err := Optimize(w, Vanilla{}, p, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("mqo_queries_total", "mode", "plain"); got != before {
		t.Error("registry still recording after SetDefaultRecorder(nil)")
	}
}
