package mqo

import "repro/internal/prefix"

// Serving-level prefix-sharing analysis (the related-work MQO family
// of Section II-C): measure how much of a prompt batch a perfect
// prefix cache could reuse, and reorder the Table III template so its
// shared blocks lead.

// PrefixStats summarizes prefix sharing over one prompt batch.
type PrefixStats = prefix.Stats

// AnalyzePrefixSharing inserts the prompts into a token trie and
// reports total, unique and shared token counts.
func AnalyzePrefixSharing(prompts []string) PrefixStats { return prefix.Analyze(prompts) }

// ReorderSharedFirst rewrites Table III prompts so the batch-invariant
// task block leads, maximizing cacheable prefix (the [49] reordering).
func ReorderSharedFirst(prompts []string) []string { return prefix.ReorderSharedFirst(prompts) }
