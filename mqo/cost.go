package mqo

import (
	"repro/internal/cost"
	"repro/internal/token"
)

// Pricing is a model's USD price per 1,000 tokens.
type Pricing = cost.Pricing

// CostReport compares an optimized execution against its baseline in
// dollars.
type CostReport = cost.Report

// CostProjection scales a per-query token cost to a deployment-sized
// workload (the paper's 10-million-query argument).
type CostProjection = cost.Projection

// TokenMeter accumulates query/token counts.
type TokenMeter = token.Meter

// LookupPricing returns the built-in pricing for "gpt-3.5-turbo",
// "gpt-4" or "gpt-4o-mini" — the price points the paper argues from.
func LookupPricing(model string) (Pricing, error) { return cost.Lookup(model) }

// CompareCost prices two token meters (baseline vs optimized) and
// reports the savings.
func CompareCost(p Pricing, baseline, optimized TokenMeter) CostReport {
	return cost.Compare(p, baseline, optimized)
}

// ProjectCost estimates the bill for `queries` queries averaging
// tokensPerQuery input tokens.
func ProjectCost(p Pricing, queries int64, tokensPerQuery float64) (CostProjection, error) {
	return cost.Project(p, queries, tokensPerQuery)
}

// CountTokens estimates the token count of a text with the local
// deterministic tokenizer (the unit every budget in this package uses).
func CountTokens(text string) int { return token.Count(text) }
