package mqo

import (
	"math"
	"testing"
)

func smallWorkload(t testing.TB, seed uint64) (*Workload, *Sim) {
	t.Helper()
	g, err := GenerateDatasetScaled("cora", seed, 0.25)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	w := NewWorkload(g, 10, 120, 4, seed)
	return w, NewSim(GPT35(), g, seed)
}

func TestOptimizePlainExecution(t *testing.T) {
	w, p := smallWorkload(t, 1)
	rep, err := Optimize(w, KHopRandom{K: 1}, p, Options{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if got := len(rep.Results.Pred); got != len(w.Queries) {
		t.Fatalf("predictions = %d, want %d", got, len(w.Queries))
	}
	if rep.Accuracy <= 0.3 {
		t.Errorf("accuracy = %.3f, suspiciously low", rep.Accuracy)
	}
	if rep.Results.Meter.Total() == 0 {
		t.Error("token meter recorded nothing")
	}
	if rep.Rounds != nil {
		t.Error("plain execution should not report boosting rounds")
	}
}

func TestOptimizePruneReducesTokens(t *testing.T) {
	w, p := smallWorkload(t, 2)
	base, err := Optimize(w, KHopRandom{K: 1}, p, Options{})
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	w2, p2 := smallWorkload(t, 2)
	pruned, err := Optimize(w2, KHopRandom{K: 1}, p2, Options{Prune: true, Tau: 0.4})
	if err != nil {
		t.Fatalf("pruned: %v", err)
	}
	// The pruned run spends CalibrationQueries extra zero-shot queries,
	// but removing neighbor text from 40% of prompts must still win.
	if pruned.Results.Meter.InputTokens() >= base.Results.Meter.InputTokens() {
		t.Errorf("pruned input tokens %d >= base %d",
			pruned.Results.Meter.InputTokens(), base.Results.Meter.InputTokens())
	}
	if pruned.Tau != 0.4 {
		t.Errorf("Tau = %v, want 0.4", pruned.Tau)
	}
	if pruned.CalibrationQueries <= 0 {
		t.Error("expected calibration queries > 0 for inadequacy fitting")
	}
	wantPruned := int(0.4 * float64(len(w2.Queries)))
	if got := len(pruned.Plan.Prune); got != wantPruned {
		t.Errorf("pruned set = %d, want %d", got, wantPruned)
	}
}

func TestOptimizeBudgetDerivesTau(t *testing.T) {
	w, p := smallWorkload(t, 3)
	ctx := w.Context()
	perQuery, perNeighbor := EstimateQueryTokens(ctx, KHopRandom{K: 1}, w.Queries, 0)
	if perQuery <= perNeighbor || perNeighbor <= 0 {
		t.Fatalf("token estimate perQuery=%v perNeighbor=%v", perQuery, perNeighbor)
	}
	// Budget for ~70% of queries carrying neighbor text.
	budget := float64(len(w.Queries)) * (perQuery - 0.3*perNeighbor)
	rep, err := Optimize(w, KHopRandom{K: 1}, p, Options{Prune: true, Budget: budget})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if math.Abs(rep.Tau-0.3) > 0.02 {
		t.Errorf("derived τ = %.3f, want ≈0.30", rep.Tau)
	}
}

func TestOptimizeBoostTracksRounds(t *testing.T) {
	w, p := smallWorkload(t, 4)
	rep, err := Optimize(w, KHopRandom{K: 2}, p, Options{Boost: true})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(rep.Rounds) < 2 {
		t.Fatalf("boosting ran %d rounds, want ≥2", len(rep.Rounds))
	}
	executed := 0
	for _, r := range rep.Rounds {
		executed += r.Executed
	}
	if executed != len(w.Queries) {
		t.Errorf("rounds executed %d queries, want %d", executed, len(w.Queries))
	}
	if rep.Results.PseudoLabelUses == 0 {
		t.Error("boosting used no pseudo-labels on a dense 2-hop workload")
	}
}

func TestOptimizeJointMatchesPaperShape(t *testing.T) {
	// "w/ prune & boost": 20% fewer equipped prompts and accuracy within
	// noise of the unoptimized baseline.
	w, p := smallWorkload(t, 5)
	base, err := Optimize(w, KHopRandom{K: 2}, p, Options{})
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	w2, p2 := smallWorkload(t, 5)
	joint, err := Optimize(w2, KHopRandom{K: 2}, p2, Options{Prune: true, Tau: 0.2, Boost: true})
	if err != nil {
		t.Fatalf("joint: %v", err)
	}
	// Equipped counts prompts that actually carried neighbor text; it
	// can fall below (1-τ)|Q| when isolated nodes select no neighbors,
	// but never exceed it.
	maxEquipped := len(w2.Queries) - int(0.2*float64(len(w2.Queries)))
	if joint.Results.Equipped > maxEquipped {
		t.Errorf("equipped = %d, want ≤ %d", joint.Results.Equipped, maxEquipped)
	}
	if joint.Results.Equipped < maxEquipped/2 {
		t.Errorf("equipped = %d, suspiciously few (max %d)", joint.Results.Equipped, maxEquipped)
	}
	if joint.Accuracy < base.Accuracy-0.05 {
		t.Errorf("joint accuracy %.3f dropped more than 5 points below base %.3f",
			joint.Accuracy, base.Accuracy)
	}
}

func TestOptimizeRandomPrune(t *testing.T) {
	w, p := smallWorkload(t, 6)
	rep, err := Optimize(w, KHopRandom{K: 1}, p, Options{Prune: true, Tau: 0.5, RandomPrune: true})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if rep.CalibrationQueries != 0 {
		t.Errorf("random pruning spent %d calibration queries, want 0", rep.CalibrationQueries)
	}
	if got, want := len(rep.Plan.Prune), len(w.Queries)/2; got != want {
		t.Errorf("pruned %d, want %d", got, want)
	}
}

func TestOptimizeInputValidation(t *testing.T) {
	if _, err := Optimize(nil, Vanilla{}, nil, Options{}); err == nil {
		t.Error("nil workload accepted")
	}
	g := GenerateDataset("citeseer", 1)
	w := &Workload{Graph: g, M: 4}
	if _, err := Optimize(w, Vanilla{}, NewSim(GPT35(), g, 1), Options{}); err == nil {
		t.Error("empty query set accepted")
	}
	w2, p := smallWorkload(t, 7)
	if _, err := Optimize(w2, Vanilla{}, p, Options{Prune: true, Tau: 1.5}); err == nil {
		t.Error("τ > 1 accepted")
	}
}

func TestDatasetNamesAndGeneration(t *testing.T) {
	names := DatasetNames()
	if len(names) != 5 {
		t.Fatalf("DatasetNames = %v, want 5 entries", names)
	}
	for _, n := range names {
		g, err := GenerateDatasetScaled(n, 1, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if g.NumNodes() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", n)
		}
	}
	if _, err := GenerateDatasetScaled("nope", 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestStandardMethodsCoverPaper(t *testing.T) {
	ms := Standard()
	if len(ms) != 3 {
		t.Fatalf("Standard() = %d methods, want 3", len(ms))
	}
	want := map[string]bool{
		"1-hop random": true, "2-hop random": true, "SNS": true,
	}
	for _, m := range ms {
		if !want[m.Name()] {
			t.Errorf("unexpected method %q", m.Name())
		}
	}
}

func TestWorkloadContextDefaults(t *testing.T) {
	g := GenerateDataset("pubmed", 1)
	w := NewWorkload(g, 20, 50, 4, 1)
	ctx := w.Context()
	if ctx.NodeType != "paper" || ctx.EdgeRelation != "citation" {
		t.Errorf("defaults = %q/%q, want paper/citation", ctx.NodeType, ctx.EdgeRelation)
	}
	if len(ctx.Known) != len(w.Labeled) {
		t.Errorf("Known = %d entries, want %d", len(ctx.Known), len(w.Labeled))
	}
	for _, v := range w.Labeled {
		if ctx.Known[v] != g.Classes[g.Nodes[v].Label] {
			t.Fatalf("node %d visible label %q != true label", v, ctx.Known[v])
		}
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	run := func() (*Report, error) {
		w, p := smallWorkload(t, 11)
		return Optimize(w, SNS{}, p, Options{Prune: true, Tau: 0.2, Boost: true})
	}
	a, err := run()
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := run()
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Accuracy != b.Accuracy || a.Results.Meter.Total() != b.Results.Meter.Total() {
		t.Errorf("runs diverged: acc %.4f vs %.4f, tokens %d vs %d",
			a.Accuracy, b.Accuracy, a.Results.Meter.Total(), b.Results.Meter.Total())
	}
	for v, c := range a.Results.Pred {
		if b.Results.Pred[v] != c {
			t.Fatalf("prediction for node %d diverged: %q vs %q", v, c, b.Results.Pred[v])
		}
	}
}

// TestOptimizeWorkersDeterministic is the acceptance check for the
// concurrency knobs: the full pipeline (prune + boost) at Workers=8
// must reproduce the serial run bit for bit — same accuracy, same
// per-node predictions, same token totals.
func TestOptimizeWorkersDeterministic(t *testing.T) {
	run := func(workers int) *Report {
		t.Helper()
		w, p := smallWorkload(t, 4)
		rep, err := Optimize(w, KHopRandom{K: 1}, p, Options{
			Prune: true, Tau: 0.2, Boost: true, Workers: workers,
		})
		if err != nil {
			t.Fatalf("Optimize(workers=%d): %v", workers, err)
		}
		return rep
	}

	serial := run(1)
	for _, workers := range []int{4, 8} {
		rep := run(workers)
		if rep.Accuracy != serial.Accuracy {
			t.Fatalf("workers=%d accuracy %.6f != serial %.6f", workers, rep.Accuracy, serial.Accuracy)
		}
		if len(rep.Results.Pred) != len(serial.Results.Pred) {
			t.Fatalf("workers=%d predicted %d nodes, serial %d", workers,
				len(rep.Results.Pred), len(serial.Results.Pred))
		}
		for v, cat := range serial.Results.Pred {
			if rep.Results.Pred[v] != cat {
				t.Fatalf("workers=%d node %d predicted %q, serial %q", workers, v, rep.Results.Pred[v], cat)
			}
		}
		if rep.Results.Meter.Total() != serial.Results.Meter.Total() ||
			rep.Results.Meter.Queries() != serial.Results.Meter.Queries() {
			t.Fatalf("workers=%d token totals (%d tokens, %d queries) != serial (%d, %d)",
				workers, rep.Results.Meter.Total(), rep.Results.Meter.Queries(),
				serial.Results.Meter.Total(), serial.Results.Meter.Queries())
		}
		if rep.CalibrationQueries != serial.CalibrationQueries {
			t.Fatalf("workers=%d calibration queries %d != serial %d",
				workers, rep.CalibrationQueries, serial.CalibrationQueries)
		}
		if len(rep.Rounds) != len(serial.Rounds) {
			t.Fatalf("workers=%d boosting rounds %d != serial %d",
				workers, len(rep.Rounds), len(serial.Rounds))
		}
	}
}

func TestOptimizeCacheCoalescesDuplicates(t *testing.T) {
	w, p := smallWorkload(t, 6)
	rep, err := Optimize(w, KHopRandom{K: 1}, p, Options{Workers: 4, Cache: true})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if got := len(rep.Results.Pred); got != len(w.Queries) {
		t.Fatalf("predictions = %d, want %d", got, len(w.Queries))
	}
}
