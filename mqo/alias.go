package mqo

import (
	"io"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/predictors"
	"repro/internal/tag"
)

// Graph is a text-attributed graph G = (V, E, T, X); see
// GenerateDataset for the five benchmark instances.
type Graph = tag.Graph

// Node is one vertex with its text attribute and ground-truth label.
type Node = tag.Node

// NodeID identifies a node within one Graph.
type NodeID = tag.NodeID

// Split is a labeled/query partition of a graph's nodes.
type Split = tag.Split

// Spec describes a benchmark dataset's generation parameters and its
// paper-scale statistics (Table II).
type Spec = tag.Spec

// Context carries the state a Method needs to select neighbors and
// build prompts: the graph, the visible-label map, and prompt options.
type Context = predictors.Context

// Method selects prompt neighbors for a query node. The paper's
// benchmark methods differ only here.
type Method = predictors.Method

// Selected is one neighbor chosen for a prompt, with its visible label
// (possibly a pseudo-label) if any.
type Selected = predictors.Selected

// Vanilla is the zero-shot method: no neighbor text at all.
type Vanilla = predictors.Vanilla

// KHopRandom samples up to M neighbors within K hops, preferring
// labeled ones (the paper's "k-hop random", k = 1 or 2).
type KHopRandom = predictors.KHopRandom

// SNS is similarity-based neighbor selection [Li et al. 2024]: expand
// hop by hop until enough labeled neighbors are found, then keep the M
// most text-similar ones, most related first.
type SNS = predictors.SNS

// Predictor is the black-box LLM contract: a final prompt string in, a
// category plus token accounting out.
type Predictor = llm.Predictor

// Response is one LLM answer with its token usage.
type Response = llm.Response

// Profile parameterizes a simulated LLM (skill, bias, noise).
type Profile = llm.Profile

// Sim is the simulated black-box LLM; it parses the prompt templates of
// Table III and predicts with profile-dependent noise.
type Sim = llm.Sim

// GPT35 is the simulated profile calibrated to the paper's GPT-3.5
// columns.
func GPT35() Profile { return llm.GPT35() }

// GPT4oMini is the simulated profile calibrated to the paper's
// GPT-4o-mini columns.
func GPT4oMini() Profile { return llm.GPT4oMini() }

// Plan is an executable multi-query plan: which queries run and which
// omit neighbor text.
type Plan = core.Plan

// Results collects predictions, token totals and boosting counters for
// one executed plan.
type Results = core.Results

// Inadequacy is the fitted text-inadequacy measure D(t_i), the proxy
// for H(y_i|t_i) that ranks queries for pruning.
type Inadequacy = core.Inadequacy

// InadequacyConfig tunes how the measure is fitted (surrogate MLP,
// folds, calibration subset size).
type InadequacyConfig = core.InadequacyConfig

// BoostConfig sets the query-boosting thresholds γ1 (minimum neighbor
// labels) and γ2 (maximum conflicting labels).
type BoostConfig = core.BoostConfig

// RoundTrace records one boosting round: thresholds, executed queries,
// pseudo-label uses.
type RoundTrace = core.RoundTrace

// ExecConfig bounds how a plan's queries are dispatched: worker count,
// QPS, retries, token budget and response caching. The zero value runs
// serially with no retries — the historical Execute/Boost behavior.
type ExecConfig = core.ExecConfig

// QueryErrors aggregates per-query failures from a concurrent
// execution; the partial results for the queries that succeeded are
// returned alongside it.
type QueryErrors = core.QueryErrors

// DefaultInadequacyConfig returns the paper's small-dataset setting.
func DefaultInadequacyConfig() InadequacyConfig { return core.DefaultInadequacyConfig() }

// DefaultBoostConfig returns the paper's setting γ1 = 3, γ2 = 2.
func DefaultBoostConfig() BoostConfig { return core.DefaultBoostConfig() }

// FitInadequacy fits the text-inadequacy measure for one dataset:
// train the surrogate classifier on the labeled set, estimate the
// LLM's per-class bias on a small calibration subset, and merge the
// two channels with a linear regression (Section V-A1).
func FitInadequacy(g *Graph, labeled []NodeID, p Predictor, nodeType string, cfg InadequacyConfig) (*Inadequacy, error) {
	return core.FitInadequacy(g, labeled, p, nodeType, cfg)
}

// PrunePlan ranks queries by D(t_i) ascending and marks the top τ
// fraction to omit neighbor text (Algorithm 1, step 2).
func PrunePlan(iq *Inadequacy, g *Graph, queries []NodeID, tau float64) Plan {
	return core.PrunePlan(iq, g, queries, tau)
}

// RandomPrunePlan marks a uniform-random τ fraction instead — the
// baseline the paper compares against in Fig. 7.
func RandomPrunePlan(queries []NodeID, tau float64, seed uint64) Plan {
	return core.RandomPrunePlan(queries, tau, seed)
}

// Execute runs a plan in order with no boosting, returning predictions
// and token totals.
func Execute(ctx *Context, m Method, p Predictor, plan Plan) (*Results, error) {
	return core.Execute(ctx, m, p, plan)
}

// ExecuteWith is Execute with bounded concurrency: queries fan out
// across cfg.Workers workers and results are applied in plan order, so
// an order-independent predictor (such as Sim) yields bit-identical
// results for any worker count. Per-query failures are aggregated into
// a *QueryErrors returned alongside the partial results.
func ExecuteWith(ctx *Context, m Method, p Predictor, plan Plan, cfg ExecConfig) (*Results, error) {
	return core.ExecuteWith(ctx, m, p, plan, cfg)
}

// Boost executes a plan with Algorithm 2's scheduled rounds, feeding
// pseudo-labels from earlier rounds into later prompts.
func Boost(ctx *Context, m Method, p Predictor, plan Plan, cfg BoostConfig) (*Results, []RoundTrace, error) {
	return core.Boost(ctx, m, p, plan, cfg)
}

// BoostWith is Boost with bounded concurrency inside each round.
// Rounds are barriers — prompts are fixed before a round runs and
// pseudo-labels are applied after — so intra-round parallelism
// preserves Algorithm 2's semantics exactly.
func BoostWith(ctx *Context, m Method, p Predictor, plan Plan, cfg BoostConfig, ecfg ExecConfig) (*Results, []RoundTrace, error) {
	return core.BoostWith(ctx, m, p, plan, cfg, ecfg)
}

// SavePlan writes an execution plan as a versioned JSON document, so
// an expensive planning phase can run once and be audited and executed
// later.
func SavePlan(w io.Writer, plan Plan) error { return core.SavePlan(w, plan) }

// LoadPlan reads a plan written by SavePlan, validating structure
// (unique queries, pruned ⊆ queries).
func LoadPlan(r io.Reader) (Plan, error) { return core.LoadPlan(r) }

// SaveDataset writes a graph as a versioned JSON snapshot.
func SaveDataset(w io.Writer, g *Graph) error { return tag.Save(w, g) }

// LoadDataset reads a snapshot written by SaveDataset, rebuilding
// adjacency and the vocabulary index and validating the result.
func LoadDataset(r io.Reader) (*Graph, error) { return tag.Load(r) }

// BuildPrompt renders the Table III prompt for query node v with the
// given neighbor selection (ranked adds SNS's "most related first"
// phrasing). Pass nil neighbors for a zero-shot prompt.
func BuildPrompt(ctx *Context, v NodeID, sel []Selected, ranked bool) string {
	return predictors.BuildPrompt(ctx, v, sel, ranked)
}

// Accuracy returns the fraction of predictions matching ground truth.
func Accuracy(g *Graph, pred map[NodeID]string) float64 { return core.Accuracy(g, pred) }

// TauForBudget solves the running-example equation of Section V-C for
// τ: the fraction of queries that must omit neighbor text so that the
// batch fits the token budget. The result is clamped to [0, 1]; ok is
// false when the budget cannot be met even with every prompt pruned.
func TauForBudget(budget float64, numQueries int, tokensPerQuery, tokensNeighbor float64) (tau float64, ok bool) {
	return core.TauForBudget(budget, numQueries, tokensPerQuery, tokensNeighbor)
}

// PlanAccuracy scores predictions against the full plan: accuracy
// counts an unanswered query as wrong, and coverage reports the
// answered fraction — the honest pair of numbers after a degraded run.
func PlanAccuracy(g *Graph, queries []NodeID, pred map[NodeID]string) (acc, coverage float64) {
	return core.PlanAccuracy(g, queries, pred)
}

// Surrogate is the paper's text-only classifier f_θ1, reused here as
// the graceful-degradation answer machine (Options.Fallback).
type Surrogate = core.Surrogate

// SurrogateConfig tunes FitSurrogate; the zero value uses the paper's
// defaults (linear softmax, 3 folds, 512 TF-IDF features).
type SurrogateConfig = core.SurrogateConfig

// FitSurrogate trains the surrogate classifier on the labeled set with
// zero LLM queries. Pipelines that prune can reuse the one trained by
// FitInadequacy via (*Inadequacy).Surrogate instead.
func FitSurrogate(g *Graph, labeled []NodeID, cfg SurrogateConfig) (*Surrogate, error) {
	return core.FitSurrogate(g, labeled, cfg)
}

// EstimateQueryTokens samples prompt constructions to estimate the
// average tokens per full query and per neighbor-text block. sample=0
// uses every query; otherwise a seeded uniform sample of the queries
// is drawn (keyed by ctx.Seed), so the estimate is unbiased by query
// order.
func EstimateQueryTokens(ctx *Context, m Method, queries []NodeID, sample int) (perQuery, perNeighborText float64) {
	return core.EstimateQueryTokens(ctx, m, queries, sample)
}
