package mqo

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestServeFacade drives the public serving surface end to end: build
// the tier from a workload with NewServer, query it both directly and
// over HTTP, and check the answer agrees with batch-shaped Optimize on
// the same workload.
func TestServeFacade(t *testing.T) {
	g, err := GenerateDatasetScaled("cora", 21, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorkload(g, 15, 50, 4, 21)
	m := SNS{}
	opt := Options{Workers: 4, Cache: true}

	s, err := NewServer(w, m, NewSim(GPT35(), g, 21), opt, ServeConfig{
		Window: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	node := w.Queries[0]
	res, err := s.Submit(context.Background(), "team-a", node)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := Optimize(w, m, NewSim(GPT35(), g, 21), opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := rep.Results.Pred[node]; res.Category != want {
		t.Fatalf("serve answer %q differs from Optimize answer %q", res.Category, want)
	}

	ts := httptest.NewServer(ServeHandler(s))
	defer ts.Close()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+ServeQueryPath,
		strings.NewReader(`{"node": `+jsonInt(int(node))+`}`))
	req.Header.Set("Authorization", "Bearer key-team-b")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP status = %d", resp.StatusCode)
	}
	var body struct {
		Category  string `json:"category"`
		Tenant    string `json:"tenant"`
		Coalesced bool   `json:"coalesced"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Category != res.Category {
		t.Fatalf("HTTP answer %q differs from direct answer %q", body.Category, res.Category)
	}
	if body.Tenant != "key-team-b" {
		t.Fatalf("tenant = %q, want bearer key", body.Tenant)
	}
	if !body.Coalesced {
		t.Fatal("repeat query must be served from the coalescing memory")
	}
}

func jsonInt(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}
