package mqo

import (
	"repro/internal/encode"
	"repro/internal/gnn"
)

// The GNN baselines of the paper's Fig. 1 comparison: a trained
// two-layer GCN and label propagation, runnable on the same datasets
// and splits as the LLM pipeline.

// GCN is a trained two-layer graph convolutional network.
type GCN = gnn.GCN

// GCNConfig tunes GCN training (hidden width, learning rate, weight
// decay, epochs, seed).
type GCNConfig = gnn.GCNConfig

// TrainGCN trains a GCN semi-supervised on the labeled nodes over
// TF-IDF features of maxFeatures dimensions encoded from node text.
func TrainGCN(g *Graph, labeled []NodeID, maxFeatures int, cfg GCNConfig) (*GCN, error) {
	corpus := make([]string, g.NumNodes())
	for i := range corpus {
		corpus[i] = g.Text(NodeID(i))
	}
	enc := encode.NewTFIDF(corpus, maxFeatures)
	x := make([][]float64, len(corpus))
	for i := range x {
		x[i] = enc.Encode(corpus[i])
	}
	return gnn.TrainGCN(g, x, labeled, cfg)
}

// SAGE is a trained two-layer GraphSAGE-mean model.
type SAGE = gnn.SAGE

// TrainSAGE trains GraphSAGE-mean semi-supervised on the labeled nodes
// over TF-IDF features of maxFeatures dimensions.
func TrainSAGE(g *Graph, labeled []NodeID, maxFeatures int, cfg GCNConfig) (*SAGE, error) {
	corpus := make([]string, g.NumNodes())
	for i := range corpus {
		corpus[i] = g.Text(NodeID(i))
	}
	enc := encode.NewTFIDF(corpus, maxFeatures)
	x := make([][]float64, len(corpus))
	for i := range x {
		x[i] = enc.Encode(corpus[i])
	}
	return gnn.TrainSAGE(g, x, labeled, cfg)
}

// LabelProp diffuses the labeled nodes' labels along the normalized
// adjacency for iters rounds with restart weight alpha and returns a
// predicted label per node.
func LabelProp(g *Graph, labeled []NodeID, iters int, alpha float64) ([]int, error) {
	return gnn.LabelProp(g, labeled, iters, alpha)
}
