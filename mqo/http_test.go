package mqo

import (
	"net/http/httptest"
	"testing"
	"time"
)

// TestOptimizeOverHTTP runs the full prune+boost pipeline against the
// simulator served over a real network boundary — the deployment shape
// of the paper's system — and checks it agrees with in-process
// execution.
func TestOptimizeOverHTTP(t *testing.T) {
	g, err := GenerateDatasetScaled("cora", 8, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorkload(g, 10, 60, 4, 8)

	srv := httptest.NewServer(NewSimHandler(NewSim(GPT35(), g, 8)))
	defer srv.Close()
	remote, err := NewHTTPPredictor(HTTPConfig{
		BaseURL:        srv.URL,
		Model:          "sim-gpt-3.5",
		RetryBaseDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	overHTTP, err := Optimize(w, KHopRandom{K: 1}, remote, Options{Prune: true, Tau: 0.2, Boost: true})
	if err != nil {
		t.Fatalf("Optimize over HTTP: %v", err)
	}

	w2 := NewWorkload(g, 10, 60, 4, 8)
	local, err := Optimize(w2, KHopRandom{K: 1}, NewSim(GPT35(), g, 8),
		Options{Prune: true, Tau: 0.2, Boost: true})
	if err != nil {
		t.Fatalf("Optimize in process: %v", err)
	}

	if overHTTP.Accuracy != local.Accuracy {
		t.Errorf("accuracy over HTTP %.4f != local %.4f", overHTTP.Accuracy, local.Accuracy)
	}
	for v, c := range local.Results.Pred {
		if overHTTP.Results.Pred[v] != c {
			t.Fatalf("node %d predicted %q over HTTP, %q locally", v, overHTTP.Results.Pred[v], c)
		}
	}
	if remote.Meter().Queries() != len(w.Queries)+overHTTP.CalibrationQueries {
		t.Errorf("client meter %d queries, want %d",
			remote.Meter().Queries(), len(w.Queries)+overHTTP.CalibrationQueries)
	}
}
