package mqo_test

import (
	"fmt"
	"log"

	"repro/mqo"
)

// ExampleTauForBudget reproduces the running example of Section V-C:
// the token budget determines what fraction of queries must give up
// their neighbor text.
func ExampleTauForBudget() {
	const (
		queries        = 1000
		tokensPerQuery = 500.0 // T_v: mean tokens of a full query
		tokensNeighbor = 200.0 // T_N: mean tokens of its neighbor text
	)
	fullCost := queries * tokensPerQuery
	for _, budget := range []float64{fullCost, 0.9 * fullCost, 0.8 * fullCost} {
		tau, _ := mqo.TauForBudget(budget, queries, tokensPerQuery, tokensNeighbor)
		fmt.Printf("budget %.0f -> prune %.0f%% of queries\n", budget, 100*tau)
	}
	// Output:
	// budget 500000 -> prune 0% of queries
	// budget 450000 -> prune 25% of queries
	// budget 400000 -> prune 50% of queries
}

// ExampleProjectCost reproduces the paper's introduction arithmetic:
// 10 million 1,200-token queries cost $6,000 on GPT-3.5 and $360,000
// on GPT-4.
func ExampleProjectCost() {
	for _, model := range []string{"gpt-3.5-turbo", "gpt-4"} {
		pricing, err := mqo.LookupPricing(model)
		if err != nil {
			log.Fatal(err)
		}
		proj, err := mqo.ProjectCost(pricing, 10_000_000, 1200)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: $%.0f\n", model, proj.TotalUSD)
	}
	// Output:
	// gpt-3.5-turbo: $6000
	// gpt-4: $360000
}

// ExampleOptimize shows the one-call pipeline: generate a benchmark
// dataset, split it with the paper's protocol, and execute the query
// batch with both strategies enabled.
func ExampleOptimize() {
	g, err := mqo.GenerateDatasetScaled("cora", 1, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	w := mqo.NewWorkload(g, 5, 50, 4, 1)
	p := mqo.NewSim(mqo.GPT35(), g, 1)

	rep, err := mqo.Optimize(w, mqo.KHopRandom{K: 1}, p, mqo.Options{
		Prune: true, Tau: 0.2,
		Boost: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classified %d nodes, pruned %d prompts, boosted: %v\n",
		len(rep.Results.Pred), len(rep.Plan.Prune), rep.Results.Rounds > 1)
	// Output:
	// classified 50 nodes, pruned 10 prompts, boosted: true
}

// ExampleEstimateJoint decomposes the information two sources carry
// about a label (the paper's Section IV analysis) on an XOR toy: all
// information is synergistic — neither source helps alone.
func ExampleEstimateJoint() {
	var ts, ns, ys []int
	for i := 0; i < 400; i++ {
		t, n := i%2, (i/2)%2
		ts, ns, ys = append(ts, t), append(ns, n), append(ys, t^n)
	}
	joint, err := mqo.EstimateJoint(ts, ns, ys)
	if err != nil {
		log.Fatal(err)
	}
	pid, err := joint.Decompose()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("I(T,N;Y)=%.2f bits: redundant %.2f, unique %.2f+%.2f, synergy %.2f\n",
		pid.MITotal, pid.Redundant, pid.UniqueT, pid.UniqueN, pid.Synergy)
	fmt.Printf("information gain %.2f ≤ H(Y|T) %.2f\n", pid.InformationGain(), pid.HYGivenT)
	// Output:
	// I(T,N;Y)=1.00 bits: redundant 0.00, unique 0.00+0.00, synergy 1.00
	// information gain 1.00 ≤ H(Y|T) 1.00
}

// ExampleBuildPrompt renders the paper's Table III template for a
// zero-shot query.
func ExampleBuildPrompt() {
	g, err := mqo.GenerateDatasetScaled("citeseer", 1, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	w := mqo.NewWorkload(g, 2, 10, 4, 1)
	prompt := mqo.BuildPrompt(w.Context(), w.Queries[0], nil, false)
	fmt.Println(mqo.CountTokens(prompt) > 50)
	// Output:
	// true
}
