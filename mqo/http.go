package mqo

import (
	"net/http"

	"repro/internal/llm"
)

// HTTPConfig configures an OpenAI-compatible chat-completions client
// (base URL, model, API key, retry policy).
type HTTPConfig = llm.HTTPConfig

// HTTPPredictor queries an OpenAI-compatible endpoint. It implements
// Predictor, so every optimization in this package runs unchanged
// against a real deployment.
type HTTPPredictor = llm.HTTPPredictor

// APIError is a non-retryable (or retry-exhausted) HTTP failure with
// its status code.
type APIError = llm.APIError

// NewHTTPPredictor builds the HTTP client. Swap it for NewSim to move
// the same pipeline from simulation to production:
//
//	p, err := mqo.NewHTTPPredictor(mqo.HTTPConfig{
//	    BaseURL: "https://api.openai.com",
//	    Model:   "gpt-3.5-turbo",
//	    APIKey:  os.Getenv("OPENAI_API_KEY"),
//	})
func NewHTTPPredictor(cfg HTTPConfig) (*HTTPPredictor, error) {
	return llm.NewHTTPPredictor(cfg)
}

// NewSimHandler serves a simulated LLM behind the OpenAI-compatible
// endpoint (see cmd/llmserve for a ready binary).
func NewSimHandler(sim *Sim) http.Handler { return llm.NewHandler(sim) }
