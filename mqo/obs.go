package mqo

import (
	"io"
	"net/http"

	"repro/internal/obs"
)

// Recorder receives metrics and trace spans from every layer of the
// pipeline (plan execution, batch, LLM clients and servers). The
// default is a no-op, so instrumentation costs nothing until a
// Registry is wired in via Options.Obs, Context.Obs, component fields
// or SetDefaultRecorder. See README.md "Observability" for the metric
// name catalog.
type Recorder = obs.Recorder

// Registry is the concrete recorder: a concurrency-safe metrics
// registry (counters, gauges, fixed-bucket histograms) plus a
// ring-buffer trace sink holding the last N completed spans. Expose it
// over HTTP with MetricsHandler or dump it with WritePrometheus /
// Snapshot.
type Registry = obs.Registry

// MetricSnapshot is one metric series at a point in time, as returned
// by Registry.Snapshot (JSON-friendly).
type MetricSnapshot = obs.MetricSnapshot

// TraceSpan is an in-flight trace region started via
// Recorder.StartSpan; End records it into the registry's trace ring.
type TraceSpan = obs.Span

// QueryTrace is one completed span retained by the trace ring.
type QueryTrace = obs.Trace

// NopRecorder discards every metric and span.
var NopRecorder = obs.Nop

// NewRegistry builds an empty metrics registry with the default trace
// ring capacity.
func NewRegistry() *Registry { return obs.NewRegistry() }

// SetDefaultRecorder installs r as the process-wide recorder used by
// instrumented code that was not wired explicitly (nil restores the
// no-op). This is how the commands light up the whole pipeline with
// one call.
func SetDefaultRecorder(r Recorder) { obs.SetDefault(r) }

// MetricsHandler serves reg in Prometheus text exposition format —
// mount it at /metrics.
func MetricsHandler(reg *Registry) http.Handler { return reg.Handler() }

// TraceRingHandler serves the registry's retained query traces as
// JSON — mount it at /debug/traces.
func TraceRingHandler(reg *Registry) http.Handler { return obs.TraceHandler(reg) }

// NewStructuredLogger returns a JSON-lines logger for request/access
// logging; nil writer yields a no-op logger.
func NewStructuredLogger(w io.Writer) *obs.Logger { return obs.NewLogger(w) }
