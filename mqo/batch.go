package mqo

import (
	"io"

	"repro/internal/batch"
	"repro/internal/llm"
)

// BatchRequest is one prompt to execute with an opaque caller ID.
type BatchRequest = batch.Request

// BatchConfig tunes concurrent batch execution: workers, QPS, retries,
// token budget, caching, JSONL audit log.
type BatchConfig = batch.Config

// BatchOutcome is one request's result (response or error, cache flag,
// attempt count).
type BatchOutcome = batch.Outcome

// BatchResult aggregates a batch: per-request outcomes, tokens spent,
// cache hits, failures, budget skips.
type BatchResult = batch.Result

// BatchExecutor runs query batches against one predictor under
// operational constraints.
type BatchExecutor = batch.Executor

// ErrBudgetExhausted marks queries refused because the batch token
// budget was already spent.
var ErrBudgetExhausted = batch.ErrBudgetExhausted

// ErrQueryTimeout marks predictor calls abandoned because they
// outlived the per-query deadline (Options.QueryTimeout).
var ErrQueryTimeout = batch.ErrQueryTimeout

// ErrCircuitOpen marks queries rejected fast because the circuit
// breaker judged the backend down (Options.BreakerThreshold).
var ErrCircuitOpen = batch.ErrCircuitOpen

// BreakerConfig configures the circuit breaker guarding the predictor;
// the zero value disables it.
type BreakerConfig = batch.BreakerConfig

// ContextPredictor is a Predictor whose calls can be canceled via a
// context; HTTP predictors implement it, and the executor's
// QueryTimeout path uses it to abandon hung calls promptly.
type ContextPredictor = llm.ContextPredictor

// FaultConfig parameterizes deterministic fault injection for chaos
// testing: seeded per-prompt error/hang/garbage schedules.
type FaultConfig = llm.FaultConfig

// FaultStats counts the faults a FaultInjector has injected.
type FaultStats = llm.FaultStats

// FaultInjector wraps a predictor with a deterministic fault schedule
// keyed on hash(seed, prompt): chaos runs reproduce bit-for-bit at any
// worker count.
type FaultInjector = llm.FaultInjector

// NewFaultInjector validates cfg and wraps p with fault injection.
func NewFaultInjector(p Predictor, cfg FaultConfig) (*FaultInjector, error) {
	return llm.NewFaultInjector(p, cfg)
}

// NewBatchExecutor builds a concurrent executor over p. Wrap
// single-threaded predictors (like *Sim) with SerializePredictor.
func NewBatchExecutor(p Predictor, cfg BatchConfig) (*BatchExecutor, error) {
	return batch.New(p, cfg)
}

// SerializePredictor makes a single-threaded predictor safe for a
// concurrent BatchExecutor.
func SerializePredictor(p Predictor) Predictor { return batch.Serialize(p) }

// ReplayBatchLog recovers the successful outcomes recorded in a JSONL
// audit log, keyed by request ID — the checkpoint for resuming a
// crashed or budget-stopped batch without re-billing finished queries.
func ReplayBatchLog(r io.Reader) (map[string]Response, error) { return batch.ReplayLog(r) }

// FilterDoneRequests splits a request list into still-to-run requests
// and outcomes already recovered from a log replay.
func FilterDoneRequests(reqs []BatchRequest, done map[string]Response) ([]BatchRequest, map[string]BatchOutcome) {
	return batch.FilterDone(reqs, done)
}

var _ llm.Predictor = (*llm.Sim)(nil) // facade sanity: Sim satisfies Predictor
