// Package mqo is the public API of this repository: multi-query
// optimization for "LLMs as predictors" on text-attributed graphs,
// reproducing Fang et al., "Boosting with Fewer Tokens: Multi-Query
// Optimization for LLMs Using Node Text and Neighbor Cues" (ICDE 2025).
//
// The paper's setting: each node of a text-attributed graph (TAG) is
// classified by prompting a black-box LLM with the node's own text plus
// the text of a few selected neighbors. Neighbor text dominates the
// token bill, so the paper contributes two plug-and-play strategies
// that optimize a *batch* of such queries:
//
//   - Token pruning (Algorithm 1): rank queries by a learned
//     text-inadequacy score D(t_i) and omit neighbor text for the
//     lowest-scoring ("saturated") fraction, chosen to fit a token
//     budget, without hurting accuracy.
//   - Query boosting (Algorithm 2): schedule queries into rounds so
//     that pseudo-labels predicted in earlier rounds enrich the
//     prompts of later, harder queries.
//
// This package re-exports the building blocks (datasets, neighbor-
// selection methods, simulated LLM profiles, plans) and offers a
// one-call pipeline, Optimize, that composes them:
//
//	g := mqo.GenerateDataset("cora", 1)
//	w := mqo.NewWorkload(g, 20, 1000, 4, 1)
//	p := mqo.NewSim(mqo.GPT35(), g, 1)
//	rep, err := mqo.Optimize(w, mqo.SNS{}, p, mqo.Options{
//	    Prune: true, Tau: 0.2,
//	    Boost: true,
//	})
//	fmt.Println(rep.Accuracy, rep.Results.Meter.Total())
//
// Everything is deterministic given the seeds; no network access is
// required. To drive a real OpenAI-compatible endpoint instead of the
// simulator, use NewHTTPPredictor.
package mqo

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/predictors"
	"repro/internal/prompt"
	"repro/internal/promptcache"
	"repro/internal/tag"
	"repro/internal/xrand"
)

// Workload bundles one dataset with its labeled/query split and the
// prompt-construction parameters shared by every method.
type Workload struct {
	Graph   *Graph
	Labeled []NodeID
	Queries []NodeID

	// M caps the neighbors included per prompt (the paper uses 4, or 10
	// for Ogbn-Products).
	M int
	// Seed drives per-node neighbor sampling deterministically.
	Seed uint64
	// IncludeAbstracts switches neighbor entries from title-only (the
	// paper's default) to title+abstract.
	IncludeAbstracts bool
	// NodeType and EdgeRelation label the prompt text; empty values
	// default to "paper" and "citation".
	NodeType     string
	EdgeRelation string
}

// NewWorkload splits g with the paper's per-class protocol
// (labeledPerClass nodes labeled in every class, queryCount query
// nodes) and returns a ready workload.
func NewWorkload(g *Graph, labeledPerClass, queryCount, m int, seed uint64) *Workload {
	split := g.SplitPerClass(xrand.New(seed).SplitString("split"), labeledPerClass, queryCount)
	return &Workload{
		Graph:   g,
		Labeled: split.Labeled,
		Queries: split.Query,
		M:       m,
		Seed:    seed,
	}
}

// Context materializes the workload into the per-dataset context that
// methods select neighbors against. The visible-label map starts as the
// true labels of the labeled set; query boosting adds pseudo-labels to
// it as rounds execute.
func (w *Workload) Context() *Context {
	known := make(map[NodeID]string, len(w.Labeled))
	for _, v := range w.Labeled {
		known[v] = w.Graph.Classes[w.Graph.Nodes[v].Label]
	}
	nodeType, edgeRelation := w.NodeType, w.EdgeRelation
	if nodeType == "" {
		nodeType = "paper"
	}
	if edgeRelation == "" {
		edgeRelation = "citation"
	}
	return &Context{
		Graph:            w.Graph,
		Known:            known,
		M:                w.M,
		Seed:             w.Seed,
		IncludeAbstracts: w.IncludeAbstracts,
		NodeType:         nodeType,
		EdgeRelation:     edgeRelation,
	}
}

// Options selects which of the paper's two strategies to apply and how.
type Options struct {
	// Prune enables token pruning (Algorithm 1).
	Prune bool
	// Tau is the fraction of queries whose neighbor text is omitted
	// (the paper's τ%). Ignored when Budget is set.
	Tau float64
	// Budget, when > 0, is a total input-token budget for the batch;
	// τ is derived from it with the running-example formula of
	// Section V-C (TauForBudget).
	Budget float64
	// RandomPrune replaces inadequacy ranking with uniform-random
	// pruning — the paper's baseline in Fig. 7. Requires Prune.
	RandomPrune bool
	// Inadequacy overrides the text-inadequacy fitting configuration;
	// nil uses the paper's defaults (linear surrogate, 3-fold CV,
	// 10×K calibration subset).
	Inadequacy *InadequacyConfig

	// Boost enables query boosting (Algorithm 2).
	Boost bool
	// BoostConfig overrides γ1/γ2; nil uses the paper's γ1=3, γ2=2.
	BoostConfig *BoostConfig

	// Workers bounds how many LLM queries run concurrently; 0 or 1
	// means serial. With the simulator (order-independent by
	// construction) any worker count yields bit-identical predictions,
	// accuracy and token totals.
	Workers int
	// QPS rate-limits query dispatch across all workers; 0 disables
	// rate limiting.
	QPS float64
	// BudgetTokens, when > 0, hard-stops dispatch once the combined
	// input+output token total reaches it; remaining queries fail with
	// a budget error. Note that with Workers > 1 the exact cut-off
	// point depends on completion order.
	BudgetTokens int
	// Cache deduplicates identical prompts within one run: repeated
	// prompts are served from an in-memory response cache, and
	// concurrent identical prompts coalesce into a single LLM call.
	Cache bool
	// CacheDir, when non-empty, adds a persistent prompt cache under
	// this directory: answers survive the process, so repeating a run
	// pays only for prompts never asked before. Entries are keyed by
	// the predictor's identity (model + its seed), the prompt-template
	// version and the prompt text, so a model/seed/template change can
	// never serve stale answers. Implies Cache.
	CacheDir string
	// CacheMaxBytes bounds the persistent cache's live bytes (LRU
	// eviction); 0 means unbounded.
	CacheMaxBytes int64
	// CacheTTL expires persistent entries this long after they were
	// written; 0 means they never expire.
	CacheTTL time.Duration
	// Compress, when 1..3, enables the deterministic prompt-compression
	// stage (token-pruning v2): abstract spans are ranked by signal
	// density and each abstract keeps at most 4/2/1 spans at level
	// 1/2/3. Compression rewrites prompt bytes, so it versions the
	// prompt-cache namespace (the template version becomes "v2+c<level>")
	// — compressed and uncompressed runs never share cached answers.
	Compress int
	// TargetTokens, when > 0, additionally caps each compressed prompt
	// at this token count: the globally sparsest spans keep dropping
	// until the prompt fits or only the structural floor remains.
	// Implies compression (level 1) when Compress is 0.
	TargetTokens int

	// QueryTimeout bounds each LLM call (per attempt); 0 means no
	// deadline. A call past the deadline is abandoned with
	// ErrQueryTimeout, so one hung request cannot stall the batch.
	QueryTimeout time.Duration
	// BreakerThreshold is the number of consecutive transient failures
	// (timeouts, 5xx, transport errors) that opens a circuit breaker in
	// front of the predictor; 0 disables the breaker. While open,
	// queries fail fast with ErrCircuitOpen instead of queuing behind a
	// dead backend.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before probing
	// the backend again; 0 means the 30s default.
	BreakerCooldown time.Duration
	// Replicas, when > 1, fans queries across that many replica slots
	// of the predictor through the health-aware pool: power-of-two-
	// choices routing by EWMA latency and in-flight count, with one
	// circuit breaker per replica (BreakerThreshold then configures the
	// per-replica breakers; no global breaker runs). With the simulator
	// — whose answers are keyed on hash(seed, prompt) — predictions are
	// bit-identical for any replica count. To pool *distinct* backends
	// (e.g. several HTTP endpoints), set ReplicaSet instead.
	Replicas int
	// ReplicaSet pools these explicit backends instead of replicating
	// the primary predictor. Takes precedence over Replicas.
	ReplicaSet []Predictor
	// Hedge enables hedged requests on the replica pool: when the first
	// replica has not answered within HedgeAfter, a second replica races
	// it and the first answer wins (the loser is canceled). Effective
	// only with Replicas > 1 or a ReplicaSet.
	Hedge bool
	// Affinity routes each prompt to its cache-affine replica:
	// rendezvous hashing places the prompt-cache key on one owner in
	// the replica set, so warm per-replica caches keep answering their
	// shard for free; routing degrades to power-of-two-choices when
	// the owner is ejected or overloaded. Effective only with pooling
	// (Replicas > 1 or a ReplicaSet).
	Affinity bool
	// HedgeAfter is the hedge trigger delay; 0 means the pool default
	// (50ms).
	HedgeAfter time.Duration
	// Fallback degrades instead of failing: queries whose LLM path
	// failed permanently (timeout, open breaker, exhausted budget or
	// retries) are answered by the paper's surrogate classifier f_θ1,
	// trained on the labeled set with zero LLM queries. Fallback
	// answers are marked in Results.Fallback and counted in
	// Report.SurrogateAnswered; they do not appear in QueryErrors.
	Fallback bool

	// Obs receives pipeline metrics and spans for this run; nil routes
	// to the process-default recorder (no-op unless SetDefaultRecorder
	// installed a registry).
	Obs Recorder
}

// execConfig lowers the concurrency knobs into the core executor
// configuration shared by calibration, plain execution and boosting.
func (o Options) execConfig() core.ExecConfig {
	return core.ExecConfig{
		Workers:      o.Workers,
		QPS:          o.QPS,
		BudgetTokens: o.BudgetTokens,
		Cache:        o.Cache,
		QueryTimeout: o.QueryTimeout,
		Breaker: batch.BreakerConfig{
			Threshold: o.BreakerThreshold,
			Cooldown:  o.BreakerCooldown,
		},
		Replicas:     o.ReplicaSet,
		ReplicaCount: o.Replicas,
		Hedge:        o.Hedge,
		HedgeAfter:   o.HedgeAfter,
		Affinity:     o.Affinity,
		Compress:     prompt.Compressor{Level: o.Compress, TargetTokens: o.TargetTokens},
	}
}

// Report is the outcome of one optimized multi-query execution.
type Report struct {
	// Results carries per-query predictions, token totals, and
	// boosting counters.
	Results *Results
	// Plan is the executed plan (query order and pruned set).
	Plan Plan
	// Tau is the pruned fraction actually applied.
	Tau float64
	// Accuracy is the fraction of *answered* queries predicted
	// correctly. After a degraded run (failed queries, no fallback)
	// this overstates quality; PlanAccuracy and Coverage give the
	// honest pair.
	Accuracy float64
	// PlanAccuracy scores against the full plan: an unanswered query
	// counts as wrong.
	PlanAccuracy float64
	// Coverage is the fraction of planned queries that got an answer
	// (from the LLM or the fallback surrogate).
	Coverage float64
	// LLMAnswered and SurrogateAnswered split the answered queries by
	// who answered them; SurrogateAnswered is 0 unless Options.Fallback
	// kicked in.
	LLMAnswered       int
	SurrogateAnswered int
	// Rounds traces boosting rounds; nil when Boost is off.
	Rounds []RoundTrace
	// CalibrationQueries counts extra LLM queries spent fitting the
	// inadequacy measure (0 when pruning is off or random).
	CalibrationQueries int
}

// Optimize runs the full pipeline on one workload: optionally fit the
// text-inadequacy measure and prune τ% of the queries (Algorithm 1),
// then execute the batch either directly or with query-boosting rounds
// (Algorithm 2). It is the programmatic equivalent of the paper's
// "w/ prune & boost" configuration when both flags are set.
//
// Options.Workers/QPS/BudgetTokens/Cache bound how the batch is
// dispatched; see Options. When individual queries fail permanently,
// Optimize returns the partial Report together with an error wrapping
// a *QueryErrors describing every failed query.
func Optimize(w *Workload, m Method, p Predictor, opt Options) (*Report, error) {
	if w == nil || w.Graph == nil {
		return nil, errors.New("mqo: nil workload")
	}
	if len(w.Queries) == 0 {
		return nil, errors.New("mqo: workload has no queries")
	}
	ctx := w.Context()
	if opt.Obs != nil {
		ctx.Obs = opt.Obs
	}
	rec := obs.Active(ctx.Obs)
	span := rec.StartSpan("mqo.optimize", "method", m.Name())
	defer span.End()
	rec.Add("mqo_optimize_runs_total", 1, "method", m.Name())

	rep := &Report{}
	plan := Plan{Queries: w.Queries}
	ecfg := opt.execConfig()
	var execErr error

	var pcache *promptcache.Cache
	if opt.CacheDir != "" {
		c, err := promptcache.Open(opt.CacheDir, promptcache.Config{
			MaxBytes: opt.CacheMaxBytes, TTL: opt.CacheTTL, Obs: ctx.Obs,
		})
		if err != nil {
			return nil, fmt.Errorf("mqo: opening prompt cache: %w", err)
		}
		defer c.Close()
		pcache = c
		ecfg.Disk = c
		ecfg.CacheNamespace = promptcache.NamespaceVersion(p, ecfg.Compress.TemplateVersion())
	}

	var iq *core.Inadequacy
	if opt.Prune {
		tau := opt.Tau
		if opt.Budget > 0 {
			// Cache-aware budgeting: prompts already answered on disk
			// cost zero marginal tokens, so a warm cache admits more
			// un-pruned queries under the same budget.
			var cached func(string) bool
			if pcache != nil {
				ns := ecfg.CacheNamespace
				cached = func(promptText string) bool {
					return pcache.Contains(promptcache.KeyOf(ns, promptText))
				}
			}
			perQuery, perNeighbor := core.EstimateQueryTokensCompressed(ctx, m, w.Queries, 0, ecfg.Compress, cached)
			var ok bool
			tau, ok = core.TauForBudget(opt.Budget, len(w.Queries), perQuery, perNeighbor)
			if !ok {
				return nil, fmt.Errorf("mqo: budget %.0f tokens infeasible for %d queries: even pruning every prompt (τ=%.2f) exceeds it", opt.Budget, len(w.Queries), tau)
			}
		}
		if tau < 0 || tau > 1 {
			return nil, fmt.Errorf("mqo: pruned fraction τ=%.3f outside [0,1]", tau)
		}
		rep.Tau = tau
		if opt.RandomPrune {
			plan = core.RandomPrunePlan(w.Queries, tau, w.Seed)
		} else {
			cfg := core.DefaultInadequacyConfig()
			if opt.Inadequacy != nil {
				cfg = *opt.Inadequacy
			}
			if cfg.Exec.IsZero() {
				cfg.Exec = ecfg
			}
			fitSpan := rec.StartSpan("mqo.fit_inadequacy")
			fitted, err := core.FitInadequacy(w.Graph, w.Labeled, p, ctx.NodeType, cfg)
			fitSpan.End()
			if err != nil {
				return nil, fmt.Errorf("mqo: fitting inadequacy: %w", err)
			}
			iq = fitted
			rep.CalibrationQueries = iq.CalibrationQueries
			rec.Add("mqo_calibration_queries_total", float64(iq.CalibrationQueries))
			plan = core.PrunePlan(iq, w.Graph, w.Queries, tau)
		}
	}
	rep.Plan = plan

	if opt.Fallback {
		if iq != nil {
			// Pruning already trained the surrogate (step 1 of
			// Algorithm 1); reuse it rather than fitting f_θ1 twice.
			ecfg.Fallback = iq.Surrogate(w.Graph)
		} else {
			sur, err := core.FitSurrogate(w.Graph, w.Labeled, core.SurrogateConfig{Seed: w.Seed})
			if err != nil {
				return nil, fmt.Errorf("mqo: fitting fallback surrogate: %w", err)
			}
			ecfg.Fallback = sur
		}
	}

	if opt.Boost {
		cfg := core.DefaultBoostConfig()
		if opt.BoostConfig != nil {
			cfg = *opt.BoostConfig
		}
		res, trace, err := core.BoostWith(ctx, m, p, plan, cfg, ecfg)
		if err != nil && res == nil {
			return nil, fmt.Errorf("mqo: boosting: %w", err)
		}
		rep.Results = res
		rep.Rounds = trace
		execErr = err
	} else {
		res, err := core.ExecuteWith(ctx, m, p, plan, ecfg)
		if err != nil && res == nil {
			return nil, fmt.Errorf("mqo: executing plan: %w", err)
		}
		rep.Results = res
		execErr = err
	}
	rep.Accuracy = core.Accuracy(w.Graph, rep.Results.Pred)
	rep.PlanAccuracy, rep.Coverage = core.PlanAccuracy(w.Graph, plan.Queries, rep.Results.Pred)
	rep.LLMAnswered = rep.Results.LLMAnswered()
	rep.SurrogateAnswered = rep.Results.SurrogateAnswered()
	if execErr != nil {
		// Per-query failures (a *QueryErrors) come back alongside the
		// partial report: the successful predictions, their token totals
		// and the accuracy over them remain usable.
		return rep, fmt.Errorf("mqo: %w", execErr)
	}
	return rep, nil
}

// GenerateDataset builds one of the five benchmark datasets
// ("cora", "citeseer", "pubmed", "ogbn-arxiv", "ogbn-products") at its
// default generated size. It panics on an unknown name; use
// tag.SpecByName via GenerateDatasetScaled for error handling.
func GenerateDataset(name string, seed uint64) *Graph {
	g, err := GenerateDatasetScaled(name, seed, 1)
	if err != nil {
		panic(err)
	}
	return g
}

// GenerateDatasetScaled builds a benchmark dataset with its node count
// multiplied by scale (edges keep their density). scale <= 0 means 1.
func GenerateDatasetScaled(name string, seed uint64, scale float64) (*Graph, error) {
	spec, err := tag.SpecByName(name)
	if err != nil {
		return nil, err
	}
	return tag.Generate(spec, seed, tag.Options{Scale: scale}), nil
}

// DatasetNames lists the five benchmark dataset identifiers in the
// paper's order.
func DatasetNames() []string { return tag.SortedNames() }

// NewSim constructs the simulated black-box LLM for one dataset. The
// simulator sees only final prompt strings — the same contract as a
// remote API — and meters every token it is sent.
func NewSim(p Profile, g *Graph, seed uint64) *Sim {
	return llm.NewSim(p, g.Vocab, g.Classes, seed)
}

// Standard returns the paper's benchmark methods the strategies are
// applied to, in evaluation order: 1-hop random, 2-hop random, SNS.
// (Vanilla zero-shot is the no-neighbor baseline, not a target.)
func Standard() []Method { return predictors.Standard() }
