package mqo

import (
	"net/http"

	"repro/internal/serve"
)

// This file is the facade over internal/serve: the online, multi-
// tenant query tier that coalesces interleaved single-node queries
// from many users into shared MQO plans. See the serve package
// documentation for the full model; the README's "Online serving"
// section documents the HTTP contract.

// ServeConfig tunes an online query Server: the micro-batching window,
// the admission queue's high-water mark, the Retry-After hint for
// rejected requests, per-tenant token quotas, and the execution
// configuration each coalesced window runs with.
type ServeConfig = serve.Config

// ServeResult is one answered online query.
type ServeResult = serve.Result

// Server is the online query tier. Build one with NewServer (or
// serve.New directly), mount ServeHandler, and Close it to drain.
type Server = serve.Server

// Admission-control rejections surfaced by (*Server).Submit; the HTTP
// handler maps them to 429/503 with a Retry-After header.
var (
	ErrQueueFull      = serve.ErrQueueFull
	ErrQuotaExhausted = serve.ErrQuotaExhausted
	ErrDraining       = serve.ErrDraining
	ErrUnknownNode    = serve.ErrUnknownNode
)

// ServeQueryPath is the HTTP endpoint the serving tier mounts.
const ServeQueryPath = serve.QueryPath

// DefaultServeWindow is the default micro-batching window.
const DefaultServeWindow = serve.DefaultWindow

// NewServer builds the online query tier over one workload: requests
// are answered with method m and predictor p under the execution
// options opt (workers, caches, pools, fallback — exactly what
// Optimize would use), coalesced according to cfg. Options fields that
// only make sense batch-shaped (Prune, Boost, Budget) are ignored.
// The caller owns Close.
func NewServer(w *Workload, m Method, p Predictor, opt Options, cfg ServeConfig) (*Server, error) {
	ctx := w.Context()
	if opt.Obs != nil {
		ctx.Obs = opt.Obs
	}
	cfg.Exec = opt.execConfig()
	if cfg.Obs == nil {
		cfg.Obs = opt.Obs
	}
	return serve.New(ctx, m, p, cfg)
}

// ServeHandler returns the POST /v1/query handler for s. Tenancy comes
// from the X-Tenant header or the Authorization bearer key; rejected
// requests carry 429 (503 while draining) plus Retry-After.
func ServeHandler(s *Server) http.Handler { return serve.Handler(s) }

// ServeTenant resolves the tenant identity of an HTTP request the same
// way ServeHandler does.
func ServeTenant(r *http.Request) string { return serve.Tenant(r) }
