package mqo

import (
	"repro/internal/pool"
)

// Pool is an llm-compatible predictor that fans queries across N
// replica backends with health-aware (power-of-two-choices) routing,
// per-replica circuit breakers and optional hedged requests. Most
// callers reach it through Options.Replicas / Options.ReplicaSet; the
// type is exported for direct use with NewBatchExecutor.
type Pool = pool.Pool

// PoolConfig tunes a Pool: the routing scorer, hedging, per-replica
// breakers, routing seed and metrics sink.
type PoolConfig = pool.Config

// Scorer ranks the replica set for each routing attempt; see
// PoolConfig.Scorer. Options.Affinity is the high-level switch — the
// aliases below are for callers wiring a Pool directly.
type Scorer = pool.Scorer

// P2CScorer is the default power-of-two-choices policy: two random
// candidates, lower latency×load score wins.
type P2CScorer = pool.P2C

// AffinityScorer pins each prompt-cache key to its rendezvous owner in
// the replica set, so warm per-replica caches never pay cold-replica
// tokens; routing degrades to P2C when the owner is ejected or
// overloaded. The zero value is ready to use.
type AffinityScorer = pool.Affinity

// NewPool builds a replica pool over the given backends. The same
// predictor value may appear several times; each slot keeps its own
// breaker and health state.
func NewPool(replicas []Predictor, cfg PoolConfig) (*Pool, error) {
	return pool.New(replicas, cfg)
}
