package mqo

import (
	"repro/internal/pool"
)

// Pool is an llm-compatible predictor that fans queries across N
// replica backends with health-aware (power-of-two-choices) routing,
// per-replica circuit breakers and optional hedged requests. Most
// callers reach it through Options.Replicas / Options.ReplicaSet; the
// type is exported for direct use with NewBatchExecutor.
type Pool = pool.Pool

// PoolConfig tunes a Pool: hedging, per-replica breakers, routing seed
// and metrics sink.
type PoolConfig = pool.Config

// NewPool builds a replica pool over the given backends. The same
// predictor value may appear several times; each slot keeps its own
// breaker and health state.
func NewPool(replicas []Predictor, cfg PoolConfig) (*Pool, error) {
	return pool.New(replicas, cfg)
}
