package mqo

import (
	"repro/internal/linkpred"
	"repro/internal/nn"
)

// Link prediction (Section VI-J): the same two strategies applied to
// the task of deciding whether a node pair is connected. Pruning scores
// a pair's text inadequacy as 1 − max f(x_i ‖ x_j) from a binary
// surrogate; boosting feeds predicted positive links back into later
// prompts as "pseudo-links".

// LinkDataset holds a graph with a held-out set of test pairs (half
// true edges removed from the visible adjacency, half non-edges).
type LinkDataset = linkpred.Dataset

// LinkPair is one node pair to classify as linked / not linked.
type LinkPair = linkpred.Pair

// LinkPredictor is the black-box LLM contract for link queries.
type LinkPredictor = linkpred.LinkPredictor

// SimLink is the simulated link-prediction LLM.
type SimLink = linkpred.SimLink

// LinkRunConfig selects one Table X variant (links on/off, pruning τ,
// boosting γ1).
type LinkRunConfig = linkpred.RunConfig

// LinkRunResult reports a variant's accuracy, token usage and counters.
type LinkRunResult = linkpred.RunResult

// PairInadequacy is the fitted pair-text inadequacy measure
// D(t_i, t_j).
type PairInadequacy = linkpred.PairInadequacy

// NewLinkDataset removes nTest/2 edges from g to form positive test
// pairs, samples as many non-edges as negatives, and returns the
// dataset with the remaining visible adjacency.
func NewLinkDataset(g *Graph, nTest int, seed uint64) (*LinkDataset, error) {
	return linkpred.MakeDataset(g, nTest, seed)
}

// NewSimLink constructs the simulated link-prediction LLM for g.
func NewSimLink(g *Graph, seed uint64) *SimLink {
	return linkpred.NewSimLink(g, seed)
}

// FitPairInadequacy trains the binary surrogate used by link-level
// pruning on nTrain visible edges plus sampled non-edges.
func FitPairInadequacy(d *LinkDataset, nTrain int, seed uint64) (*PairInadequacy, error) {
	return linkpred.FitPairInadequacy(d, nTrain, seed, nn.DefaultMLPConfig())
}

// RunLink executes the test pairs under one variant configuration.
func RunLink(d *LinkDataset, p LinkPredictor, cfg LinkRunConfig) (LinkRunResult, error) {
	return linkpred.Run(d, p, cfg)
}

// LinkVariants runs the paper's five Table X configurations — vanilla,
// base, w/ boost, w/ prune, w/ both — and returns results keyed by
// those names.
func LinkVariants(d *LinkDataset, p LinkPredictor, m int, pruneTau float64, gamma1 int, pruner *PairInadequacy) (map[string]LinkRunResult, error) {
	return linkpred.Variants(d, p, m, pruneTau, gamma1, pruner)
}
