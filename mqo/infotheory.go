package mqo

import "repro/internal/infotheory"

// The paper's Section IV analysis, usable on your own data: estimate
// the joint distribution of (text signal T, neighbor signal N, label Y)
// from samples and decompose I(T,N;Y) into redundant, unique and
// synergistic information (Eq. 3). The identities IG = U(N\T) + S
// (Eq. 5) and IG ≤ H(Y|T) (Eq. 6) hold exactly under the Williams–Beer
// decomposition used here.

// PID is a Partial Information Decomposition of I(T, N; Y).
type PID = infotheory.PID

// Joint3 is an estimated joint distribution P(T, N, Y) over discrete
// category codes.
type Joint3 = infotheory.Joint3

// EstimateJoint builds P(T, N, Y) from parallel sample slices of
// non-negative category codes (e.g. T = the model's zero-shot
// prediction, N = majority neighbor label, Y = ground truth).
func EstimateJoint(t, n, y []int) (*Joint3, error) {
	return infotheory.FromSamples(t, n, y)
}

// Entropy returns H(p) in bits for a probability (or count) vector.
func Entropy(p []float64) float64 { return infotheory.Entropy(p) }
