package mqo

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
)

// TestGNNFacade trains both GNN baselines and label propagation via
// the public wrappers.
func TestGNNFacade(t *testing.T) {
	g, err := GenerateDatasetScaled("cora", 12, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorkload(g, 15, 100, 4, 12)
	gcn, err := TrainGCN(g, w.Labeled, 128, GCNConfig{Epochs: 30, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	sage, err := TrainSAGE(g, w.Labeled, 128, GCNConfig{Epochs: 30, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	chance := 1.0 / float64(len(g.Classes))
	if acc := gcn.Accuracy(g, w.Queries); acc < 2*chance {
		t.Errorf("GCN facade accuracy %.3f near chance", acc)
	}
	if acc := sage.Accuracy(g, w.Queries); acc < 2*chance {
		t.Errorf("SAGE facade accuracy %.3f near chance", acc)
	}
	lp, err := LabelProp(g, w.Labeled, 20, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(lp) != g.NumNodes() {
		t.Errorf("LabelProp returned %d labels for %d nodes", len(lp), g.NumNodes())
	}
}

// TestLinkPredictionFacade runs the Table X variants via the public
// wrappers.
func TestLinkPredictionFacade(t *testing.T) {
	g, err := GenerateDatasetScaled("cora", 14, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewLinkDataset(g, 60, 14)
	if err != nil {
		t.Fatal(err)
	}
	pruner, err := FitPairInadequacy(d, 50, 14)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LinkVariants(d, NewSimLink(g, 14), 4, 0.2, 3, pruner)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"vanilla", "base", "boost", "prune", "both"} {
		r, ok := res[name]
		if !ok {
			t.Fatalf("variant %q missing", name)
		}
		if r.Accuracy < 0.5 {
			t.Errorf("%s accuracy %.3f below coin flip", name, r.Accuracy)
		}
	}
	if res["prune"].Pruned == 0 {
		t.Error("prune variant pruned nothing")
	}
	one, err := RunLink(d, NewSimLink(g, 14), LinkRunConfig{WithLinks: true, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if one.Meter.Total() == 0 {
		t.Error("RunLink metered no tokens")
	}
}

// TestBatchFacade drives the executor, log replay and resume filters
// through the public wrappers.
func TestBatchFacade(t *testing.T) {
	g, err := GenerateDatasetScaled("citeseer", 15, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorkload(g, 5, 20, 4, 15)
	ctx := w.Context()

	var reqs []BatchRequest
	for i, v := range w.Queries {
		reqs = append(reqs, BatchRequest{
			ID:     fmt.Sprint(i),
			Prompt: BuildPrompt(ctx, v, nil, false),
		})
	}
	var logBuf bytes.Buffer
	exec, err := NewBatchExecutor(SerializePredictor(NewSim(GPT35(), g, 15)),
		BatchConfig{Workers: 4, Log: &logBuf, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Execute(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || len(res.Outcomes) != len(reqs) {
		t.Fatalf("batch result %+v", res)
	}
	done, err := ReplayBatchLog(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	todo, recovered := FilterDoneRequests(reqs, done)
	if len(todo) != 0 || len(recovered) != len(reqs) {
		t.Errorf("resume split %d todo / %d recovered, want 0/%d", len(todo), len(recovered), len(reqs))
	}
	if ErrBudgetExhausted == nil {
		t.Error("ErrBudgetExhausted unexported")
	}
}

// TestPrefixFacade exercises the prefix-sharing wrappers.
func TestPrefixFacade(t *testing.T) {
	g, err := GenerateDatasetScaled("cora", 16, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorkload(g, 5, 15, 4, 16)
	ctx := w.Context()
	var prompts []string
	for _, v := range w.Queries {
		prompts = append(prompts, BuildPrompt(ctx, v, nil, false))
	}
	before := AnalyzePrefixSharing(prompts)
	after := AnalyzePrefixSharing(ReorderSharedFirst(prompts))
	if after.SharedTokens <= before.SharedTokens {
		t.Errorf("reordering did not increase sharing: %d -> %d",
			before.SharedTokens, after.SharedTokens)
	}
	if !strings.Contains(before.String(), "prompts") {
		t.Errorf("Stats.String() = %q", before.String())
	}
}

// TestCostFacade prices a run through the public wrappers.
func TestCostFacade(t *testing.T) {
	p, err := LookupPricing("gpt-4o-mini")
	if err != nil {
		t.Fatal(err)
	}
	var base, opt TokenMeter
	base.AddQuery(10_000, 100)
	opt.AddQuery(8_000, 100)
	rep := CompareCost(p, base, opt)
	if rep.SavedUSD <= 0 || rep.SavedFraction <= 0 {
		t.Errorf("report %+v", rep)
	}
	proj, err := ProjectCost(p, 1000, 500)
	if err != nil || proj.TotalUSD <= 0 {
		t.Errorf("projection %+v, err %v", proj, err)
	}
	if CountTokens("three plain words") != 3 {
		t.Errorf("CountTokens = %d, want 3", CountTokens("three plain words"))
	}
}

// TestDatasetPersistenceFacade round-trips a graph through the public
// snapshot wrappers.
func TestDatasetPersistenceFacade(t *testing.T) {
	g, err := GenerateDatasetScaled("pubmed", 17, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveDataset(&buf, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != g.NumNodes() || loaded.NumEdges() != g.NumEdges() {
		t.Errorf("round trip changed size: %d/%d -> %d/%d",
			g.NumNodes(), g.NumEdges(), loaded.NumNodes(), loaded.NumEdges())
	}
}

// TestInadequacyRankFacade checks scoring helpers exposed for plan
// construction.
func TestInadequacyRankFacade(t *testing.T) {
	g, err := GenerateDatasetScaled("cora", 18, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorkload(g, 10, 50, 4, 18)
	p := NewSim(GPT35(), g, 18)
	iq, err := FitInadequacy(g, w.Labeled, p, "paper", DefaultInadequacyConfig())
	if err != nil {
		t.Fatal(err)
	}
	plan := PrunePlan(iq, g, w.Queries, 0.3)
	if len(plan.Prune) != 15 {
		t.Errorf("pruned %d, want 15", len(plan.Prune))
	}
	randPlan := RandomPrunePlan(w.Queries, 0.3, 18)
	if len(randPlan.Prune) != 15 {
		t.Errorf("random pruned %d, want 15", len(randPlan.Prune))
	}
	// Budget 1000 exactly covers 10 all-pruned queries at 100 tokens:
	// τ=1 and still feasible.
	tau, ok := TauForBudget(1000, 10, 200, 100)
	if tau != 1 || !ok {
		t.Errorf("all-pruned budget τ = %v ok = %v, want 1 true", tau, ok)
	}
	if tau, ok := TauForBudget(999, 10, 200, 100); tau != 1 || ok {
		t.Errorf("infeasible budget τ = %v ok = %v, want 1 false", tau, ok)
	}
}
