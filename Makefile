GO ?= go

.PHONY: all build vet test race bench benchpool benchcompress fuzz soak chaos warmcache traceguard servesmoke loadsmoke benchload check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# benchpool measures the replica pool's hedged-tail win (p99 with one
# occasionally-stalling backend vs a 3-replica hedged pool) and the
# affinity scorer's cold-vs-warm shard win (warm misroute rate, guarded
# at zero vs the P2C baseline), appending one JSON line each to
# BENCH_pool.json. The benchmarks themselves fail unless hedging at
# least halves the p99 and affinity keeps every warm prompt on its
# owner.
benchpool:
	MQO_BENCH_JSON=$(CURDIR)/BENCH_pool.json \
		$(GO) test -bench 'BenchmarkPoolHedgedTail|BenchmarkPoolAffinityColdWarm' -benchtime 3x -run '^$$' ./internal/pool/
	@tail -n 2 BENCH_pool.json

# fuzz smokes every fuzz target for a bounded interval (go test -fuzz
# accepts one target per package invocation).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzPoolPick -fuzztime $(FUZZTIME) -run '^$$' ./internal/pool/
	$(GO) test -fuzz FuzzReplayLog -fuzztime $(FUZZTIME) -run '^$$' ./internal/batch/
	$(GO) test -fuzz FuzzSegmentReplay -fuzztime $(FUZZTIME) -run '^$$' ./internal/promptcache/
	$(GO) test -fuzz FuzzScenarioConfig -fuzztime $(FUZZTIME) -run '^$$' ./internal/load/
	$(GO) test -fuzz FuzzCompress -fuzzminimizetime 10x -fuzztime $(FUZZTIME) -run '^$$' ./internal/prompt/

# soak runs the chaos soak (replica pool + hedging + breakers + disk
# cache + surrogate fallback under injected faults) and the serving-tier
# soak (mixed-tenant coalescing + backpressure over /v1/query) with the
# race detector. -short keeps CI at 2k query executions; drop it locally
# for the full 10k.
soak:
	$(GO) test -race -tags soak -short -run 'TestSoak' ./internal/core/ ./internal/serve/

# chaos runs the fault-injection experiment at a fixed seed and asserts
# that the surrogate fallback actually answered queries and that the
# run reproduced across worker counts (the experiment fails otherwise).
chaos:
	$(GO) run ./cmd/mqobench -exp faults -fast -seed 1 > chaos.log; \
		status=$$?; cat chaos.log; \
		if [ $$status -ne 0 ]; then rm -f chaos.log; exit $$status; fi
	grep -Eq 'chaos: surrogate fallback answered [1-9][0-9]* queries' chaos.log
	rm -f chaos.log

# warmcache proves the persistent prompt cache end-to-end across two
# processes: a cold mqobench run populates the cache directory, and the
# warm re-run must answer every prompt from disk. The warm run's metrics
# snapshot (BENCH_cache.json) must contain zero predictor calls
# (mqo_sim_queries_total absent) and zero cache misses; the target fails
# otherwise.
warmcache:
	rm -rf warmcache.dir
	$(GO) run ./cmd/mqobench -exp table4 -fast -seed 1 -cache-dir warmcache.dir > /dev/null
	$(GO) run ./cmd/mqobench -exp table4 -fast -seed 1 -cache-dir warmcache.dir -metrics-json BENCH_cache.json > /dev/null 2>&1
	rm -rf warmcache.dir
	@if grep -q mqo_sim_queries_total BENCH_cache.json; then \
		echo "warmcache: FAIL - warm run paid predictor calls"; exit 1; fi
	@if grep -q mqo_cache_misses_total BENCH_cache.json; then \
		echo "warmcache: FAIL - warm run missed the cache"; exit 1; fi
	@grep -q mqo_cache_hits_total BENCH_cache.json || \
		{ echo "warmcache: FAIL - no cache hits recorded"; exit 1; }
	@echo "warmcache: warm run served entirely from cache (BENCH_cache.json)"

# traceguard proves end-to-end latency attribution: a fully-traced
# mqorun must produce, for every query, a ledger whose billed stages
# cover >= 90% of the query's span, and an SLO report whose JSON a
# strict consumer can parse. A generous 30s p99 objective makes the
# -require-slo verdict deterministic on any CI machine.
traceguard:
	$(GO) run ./cmd/mqorun -dataset cora -scale 0.1 -queries 25 -seed 1 -workers 4 \
		-trace-sample 1 -slo-latency-p99 30s \
		-trace-json traceguard.json -metrics-json traceguard-metrics.json > /dev/null
	$(GO) run ./cmd/traceguard -trace traceguard.json -require-slo
	rm -f traceguard.json traceguard-metrics.json

# loadsmoke is the CI load gate: the short deterministic "smoke"
# scenario (fixed seed, sim predictor, open-loop Poisson arrivals)
# drives the in-process serving tier, and the run fails on any SLO
# violation, any client/server verdict disagreement, or a >1%
# decode-error share. The generous 30s p99 objective makes the verdict
# deterministic on any CI machine; the honest tail numbers live in
# BENCH_load.json.
loadsmoke:
	$(GO) run ./cmd/mqoload -preset smoke -require-slo -max-decode-errors 0.01

# benchload appends one report row per headline scenario (steady near
# capacity, flood past it) to the committed BENCH_load.json trajectory:
# p50/p95/p99 latency, tokens per query, coalescing and affinity rates,
# 429 share, queue peak, and the SLO verdict cross-checked against the
# same run's /debug/slo.
benchload:
	$(GO) run ./cmd/mqoload -preset steady -out BENCH_load.json -max-decode-errors 0
	$(GO) run ./cmd/mqoload -preset flood -out BENCH_load.json -max-decode-errors 0
	@tail -n 2 BENCH_load.json

# benchcompress runs the standard prompt-compression sweep (levels 1-3
# plus two token budgets on the calibration datasets) and appends one
# JSON row per dataset to the committed BENCH_compress.json trajectory.
# The benchmark itself is the guard: it fails unless level-1
# compression saves >= 10% of metered input tokens on every dataset at
# same-shape accuracy.
benchcompress:
	MQO_BENCH_JSON=$(CURDIR)/BENCH_compress.json \
		$(GO) test -bench BenchmarkCompressSweep -benchtime 1x -run '^$$' ./internal/experiments/
	@tail -n 3 BENCH_compress.json

# servesmoke proves the online serving tier end to end across a real
# process boundary: llmserve starts with -serve, mixed-tenant
# concurrent queries hit POST /v1/query, the coalescing metrics must be
# nonzero and the SLO verdict 200, and SIGTERM must drain cleanly.
servesmoke:
	$(GO) build -o servesmoke-llmserve.bin ./cmd/llmserve
	$(GO) run ./cmd/servesmoke -llmserve ./servesmoke-llmserve.bin; \
		status=$$?; rm -f servesmoke-llmserve.bin; exit $$status

check: build vet test race
