GO ?= go

.PHONY: all build vet test race bench chaos check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# chaos runs the fault-injection experiment at a fixed seed and asserts
# that the surrogate fallback actually answered queries and that the
# run reproduced across worker counts (the experiment fails otherwise).
chaos:
	$(GO) run ./cmd/mqobench -exp faults -fast -seed 1 > chaos.log; \
		status=$$?; cat chaos.log; \
		if [ $$status -ne 0 ]; then rm -f chaos.log; exit $$status; fi
	grep -Eq 'chaos: surrogate fallback answered [1-9][0-9]* queries' chaos.log
	rm -f chaos.log

check: build vet test race
