GO ?= go

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

check: build vet test race
