package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// goldenArgs is the pinned end-to-end configuration: small enough for
// test time, large enough to exercise pruning, boosting, inadequacy
// fitting and multi-round scheduling.
var goldenArgs = []string{
	"-dataset", "cora", "-scale", "0.1", "-queries", "30",
	"-prune", "0.25", "-boost", "-seed", "1",
}

const goldenFile = "testdata/golden_cora.txt"

// runMain drives the command exactly like a shell would and returns its
// stdout. Diagnostics (progress chatter, cache stats) go to stderr and
// are not part of the golden contract.
func runMain(t *testing.T, extra ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	args := append(append([]string{}, goldenArgs...), extra...)
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\nstderr:\n%s", args, err, stderr.String())
	}
	return stdout.String()
}

// TestGoldenOutput is the regression anchor for the full pipeline: the
// committed table must be reproduced byte-identically with the cache
// cold, the cache warm, at 1 and 8 workers, and with no cache at all.
// Any diff means either results drifted (a real regression) or the
// output format changed (regenerate with UPDATE_GOLDEN=1 go test).
func TestGoldenOutput(t *testing.T) {
	cacheDir := t.TempDir()
	cold := runMain(t, "-cache-dir", cacheDir)

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenFile, []byte(cold), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenFile)
	}
	want, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatal(err)
	}
	if cold != string(want) {
		t.Fatalf("cold run diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", goldenFile, cold, want)
	}

	for name, extra := range map[string][]string{
		"warm":           {"-cache-dir", cacheDir},
		"warm-8-workers": {"-cache-dir", cacheDir, "-workers", "8"},
		"cold-8-workers": {"-cache-dir", t.TempDir(), "-workers", "8"},
		"no-cache":       nil,
		// The replica pool routes, it never rewrites: any replica count,
		// hedging on or off, must reproduce the same bytes. The warm
		// pooled row additionally pins identity transparency — pooling N
		// slots of one simulator keeps the promptcache namespace, so the
		// single-replica cache stays warm. -hedge-after 1ns makes the
		// hedge timer fire on effectively every query.
		"1-replica":       {"-replicas", "1"},
		"3-replicas":      {"-replicas", "3", "-workers", "8"},
		"3-hedged":        {"-replicas", "3", "-hedge", "-hedge-after", "1ns", "-workers", "8"},
		"3-replicas-warm": {"-cache-dir", cacheDir, "-replicas", "3"},
	} {
		if got := runMain(t, extra...); got != string(want) {
			t.Errorf("%s run diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
		}
	}
}

const goldenCompressFile = "testdata/golden_cora_compress.txt"

// TestGoldenCompressOutput pins the same pipeline under the prompt
// compressor: level-1 compression must reproduce its own committed
// table byte-identically with the cache cold, warm, and at 8 workers —
// and that table must differ from the uncompressed golden, or the flag
// silently stopped reaching the executor.
func TestGoldenCompressOutput(t *testing.T) {
	cacheDir := t.TempDir()
	compressArgs := []string{"-compress", "1", "-cache-dir", cacheDir}
	cold := runMain(t, compressArgs...)

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenCompressFile, []byte(cold), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenCompressFile)
	}
	want, err := os.ReadFile(goldenCompressFile)
	if err != nil {
		t.Fatal(err)
	}
	if cold != string(want) {
		t.Fatalf("cold compressed run diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", goldenCompressFile, cold, want)
	}
	if plain, err := os.ReadFile(goldenFile); err != nil {
		t.Fatal(err)
	} else if cold == string(plain) {
		t.Fatal("-compress 1 produced the uncompressed golden bytes: compression not applied")
	}

	for name, extra := range map[string][]string{
		"warm":           {"-compress", "1", "-cache-dir", cacheDir},
		"warm-8-workers": {"-compress", "1", "-cache-dir", cacheDir, "-workers", "8"},
		"no-cache":       {"-compress", "1"},
	} {
		if got := runMain(t, extra...); got != string(want) {
			t.Errorf("%s compressed run diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
		}
	}
}

// warmMetrics runs a cold run then an identical warm run against the
// same cache directory (both with extra args appended) and returns a
// summing lookup over the warm run's metrics snapshot.
func warmMetrics(t *testing.T, extra ...string) func(name string) (float64, bool) {
	t.Helper()
	cacheDir := t.TempDir()
	runMain(t, append([]string{"-cache-dir", cacheDir}, extra...)...) // cold: populates the cache

	metricsPath := filepath.Join(t.TempDir(), "metrics.json")
	runMain(t, append([]string{"-cache-dir", cacheDir, "-metrics-json", metricsPath}, extra...)...)

	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []obs.MetricSnapshot
	if err := json.Unmarshal(data, &snaps); err != nil {
		t.Fatalf("parsing %s: %v", metricsPath, err)
	}
	return func(name string) (float64, bool) {
		total, found := 0.0, false
		for _, s := range snaps {
			if s.Name == name {
				total += s.Value
				found = true
			}
		}
		return total, found
	}
}

// requireZeroPredictorCalls asserts the warm-cache acceptance
// criterion on a metrics lookup: zero predictor calls, zero cache
// misses, nonzero hits.
func requireZeroPredictorCalls(t *testing.T, byName func(string) (float64, bool)) {
	t.Helper()
	if calls, found := byName("mqo_sim_queries_total"); found && calls != 0 {
		t.Errorf("warm run paid %v predictor calls, want 0", calls)
	}
	if misses, found := byName("mqo_cache_misses_total"); found && misses != 0 {
		t.Errorf("warm run had %v cache misses, want 0", misses)
	}
	hits, found := byName("mqo_cache_hits_total")
	if !found || hits == 0 {
		t.Errorf("warm run recorded no cache hits (found=%v, hits=%v)", found, hits)
	}
}

// TestWarmRunMakesZeroPredictorCalls asserts the acceptance criterion
// directly: a second identical mqorun against the same cache directory
// performs zero predictor calls — the simulator's query counter never
// increments, and the cache reports no misses.
func TestWarmRunMakesZeroPredictorCalls(t *testing.T) {
	requireZeroPredictorCalls(t, warmMetrics(t))
}

// TestWarmCompressedRunMakesZeroPredictorCalls is the same criterion
// under compression: the compressed cold run populates the versioned
// v2+c1 cache namespace and the warm re-run must be served entirely
// from it — compression changes the bytes being cached, never whether
// caching works. The compression metric families must also be present:
// compression ran on the warm path too (prompts are compressed before
// the cache lookup), it just cost no predictor calls.
func TestWarmCompressedRunMakesZeroPredictorCalls(t *testing.T) {
	byName := warmMetrics(t, "-compress", "1")
	requireZeroPredictorCalls(t, byName)
	if saved, found := byName("mqo_prompt_compressed_tokens_total"); !found || saved <= 0 {
		t.Errorf("warm compressed run reported no compressed tokens (found=%v, saved=%v)", found, saved)
	}
	if _, found := byName("mqo_prompt_compression_ratio"); !found {
		t.Error("warm compressed run missing mqo_prompt_compression_ratio")
	}
}
