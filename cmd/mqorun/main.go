// Command mqorun executes an optimized multi-query node-classification
// plan end-to-end on one dataset: it fits the text-inadequacy measure,
// prunes to the requested token budget (or fraction), optionally boosts
// with pseudo-label scheduling, and reports accuracy and token usage
// against the unoptimized baseline.
//
// Usage:
//
//	mqorun -dataset cora -method 2-hop -prune 0.2 -boost
//	mqorun -dataset pubmed -method sns -budget 1200000
//	mqorun -dataset cora -cache-dir /var/cache/mqo   # second run is free
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/predictors"
	"repro/internal/promptcache"
	"repro/internal/tablefmt"
	"repro/internal/tag"
	"repro/internal/xrand"
)

func methodByName(name string) (predictors.Method, error) {
	return predictors.ByName(name)
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "mqorun: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flags come from
// args, user-facing output goes to stdout, diagnostics to stderr. The
// golden e2e test drives it exactly like a shell would.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mqorun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dsName      = fs.String("dataset", "cora", "dataset name: "+strings.Join(tag.SortedNames(), ", "))
		mName       = fs.String("method", "2-hop", "prediction method: vanilla, 1-hop, 2-hop, sns")
		model       = fs.String("model", "gpt-3.5", "LLM profile: gpt-3.5 or gpt-4o-mini")
		seed        = fs.Uint64("seed", 1, "deterministic seed")
		scale       = fs.Float64("scale", 1.0, "dataset scale factor")
		queries     = fs.Int("queries", 0, "query count (0 = dataset default)")
		prune       = fs.Float64("prune", -1, "prune fraction tau in [0,1] (overrides -budget)")
		budget      = fs.Float64("budget", 0, "input-token budget B (0 = unlimited)")
		boost       = fs.Bool("boost", false, "apply query boosting")
		m           = fs.Int("m", 4, "max neighbors per prompt")
		fallback    = fs.Bool("fallback", false, "answer permanently-failed queries with the surrogate classifier")
		faultErr    = fs.Float64("fault-error", 0, "chaos: fraction of prompts that fail with an injected 503")
		faultHang   = fs.Float64("fault-hang", 0, "chaos: fraction of prompts that hang until the query timeout")
		faultGarble = fs.Float64("fault-garbage", 0, "chaos: fraction of prompts answered off-template")
		savePlan    = fs.String("save-plan", "", "write the optimized plan to this JSON file")
		metricsDump = fs.Bool("metrics-dump", false, "print the metrics registry (Prometheus text format) at exit")
		metricsJSON = fs.String("metrics-json", "", "write the metrics registry snapshot to this JSON file at exit")
		traceJSON   = fs.String("trace-json", "", "write the trace report (SLO verdict, stage aggregates, per-query ledgers) to this JSON file at exit")
	)
	var ex cliflags.Exec
	ex.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The registry is installed as the process default, so every layer
	// (core execution, sim, facade) records without explicit wiring.
	var reg *obs.Registry
	if *metricsDump || *metricsJSON != "" || *traceJSON != "" {
		reg = obs.NewRegistry()
		ex.ApplyObs(reg)
		if *traceJSON != "" {
			// The trace report must cover every query of the run, not the
			// last ring's worth.
			reg.SetLedgerCapacity(1 << 16)
		}
		obs.SetDefault(reg)
		defer obs.SetDefault(nil)
	}
	dumpMetrics := func() error {
		if reg == nil {
			return nil
		}
		if *metricsDump {
			fmt.Fprintln(stdout, "\nmetrics:")
			if err := reg.WritePrometheus(stdout); err != nil {
				return err
			}
		}
		if *metricsJSON != "" {
			data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*metricsJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "metrics snapshot written to %s\n", *metricsJSON)
		}
		if *traceJSON != "" {
			data, err := json.MarshalIndent(reg.TraceReport(), "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*traceJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "trace report written to %s\n", *traceJSON)
		}
		return nil
	}

	spec, err := tag.SpecByName(*dsName)
	if err != nil {
		return err
	}
	method, err := methodByName(*mName)
	if err != nil {
		return err
	}
	var profile llm.Profile
	switch *model {
	case "gpt-3.5":
		profile = llm.GPT35()
	case "gpt-4o-mini":
		profile = llm.GPT4oMini()
	default:
		return fmt.Errorf("unknown model %q", *model)
	}

	fmt.Fprintf(stdout, "generating %s (scale %.2f)...\n", spec.Display, *scale)
	g := tag.Generate(spec, *seed, tag.Options{Scale: *scale})
	q := spec.QueryCount
	if *queries > 0 {
		q = *queries
	}
	srng := xrand.New(*seed).SplitString("mqorun/split")
	var split tag.Split
	if spec.LabeledPerClass > 0 {
		split = g.SplitPerClass(srng, spec.LabeledPerClass, q)
	} else {
		split = g.SplitFraction(srng, spec.LabeledFrac, q)
	}

	newCtx := func() *predictors.Context {
		return &predictors.Context{
			Graph: g,
			Known: predictors.KnownFromSplit(g, split),
			M:     *m,
			Seed:  *seed,
		}
	}
	sim := llm.NewSim(profile, g.Vocab, g.Classes, *seed+7)
	var pred llm.Predictor = sim
	var injector *llm.FaultInjector
	if *faultErr > 0 || *faultHang > 0 || *faultGarble > 0 {
		if *faultHang > 0 && ex.QueryTimeout <= 0 {
			return fmt.Errorf("-fault-hang requires -query-timeout, or hung prompts block forever")
		}
		injector, err = llm.NewFaultInjector(sim, llm.FaultConfig{
			Seed:        *seed + 13,
			ErrorRate:   *faultErr,
			HangRate:    *faultHang,
			GarbageRate: *faultGarble,
		})
		if err != nil {
			return err
		}
		pred = injector
	}
	if ex.Hedge && ex.Replicas < 2 {
		fmt.Fprintln(stderr, "mqorun: -hedge has no effect with fewer than 2 replicas")
	}
	if ex.Affinity && ex.Replicas < 2 {
		fmt.Fprintln(stderr, "mqorun: -affinity has no effect with fewer than 2 replicas")
	}
	ecfg := core.ExecConfig{
		Workers:      ex.Workers,
		QPS:          ex.QPS,
		QueryTimeout: ex.QueryTimeout,
		Breaker:      ex.BreakerConfig(),
		ReplicaCount: ex.Replicas,
		Hedge:        ex.Hedge,
		HedgeAfter:   ex.HedgeAfter,
		Affinity:     ex.Affinity,
		Compress:     ex.Compressor(),
	}
	// Persistent prompt cache: every stage below — baseline, inadequacy
	// fitting, optimized run, boosting — shares the disk tier, and a
	// repeated invocation with the same flags answers entirely from it.
	var pcache *promptcache.Cache
	var cacheNS string
	if ex.CacheDir != "" {
		ccfg := promptcache.Config{MaxBytes: ex.CacheMaxBytes, TTL: ex.CacheTTL}
		if reg != nil {
			ccfg.Obs = reg
		}
		pcache, err = promptcache.Open(ex.CacheDir, ccfg)
		if err != nil {
			return fmt.Errorf("opening prompt cache: %w", err)
		}
		defer pcache.Close()
		cacheNS = promptcache.NamespaceVersion(pred, ecfg.Compress.TemplateVersion())
		ecfg.Disk = pcache
		ecfg.CacheNamespace = cacheNS
	}
	if *fallback {
		sur, err := core.FitSurrogate(g, split.Labeled, core.SurrogateConfig{Seed: *seed})
		if err != nil {
			return fmt.Errorf("fitting fallback surrogate: %w", err)
		}
		ecfg.Fallback = sur
	}

	// Per-query failures come back as a *QueryErrors alongside partial
	// results: report and keep going rather than voiding the whole run.
	tolerate := func(stage string, err error) error {
		if err == nil {
			return nil
		}
		var qe *core.QueryErrors
		if errors.As(err, &qe) {
			fmt.Fprintf(stderr, "mqorun: %s: %v (continuing with partial results)\n", stage, qe)
			return nil
		}
		return err
	}

	// Baseline.
	// The worker count goes to stderr: results are identical for any
	// -workers value, and stdout stays byte-comparable across runs.
	fmt.Fprintf(stderr, "concurrency: %d workers\n", ex.Workers)
	fmt.Fprintf(stdout, "running baseline %s over %d queries...\n", method.Name(), len(split.Query))
	base, err := core.ExecuteWith(newCtx(), method, pred, core.Plan{Queries: split.Query}, ecfg)
	if err := tolerate("baseline", err); err != nil {
		return err
	}

	// Optimized plan.
	plan := core.Plan{Queries: split.Query}
	tau := 0.0
	if *prune >= 0 || *budget > 0 {
		fmt.Fprintln(stdout, "fitting text-inadequacy measure...")
		iqCfg := core.DefaultInadequacyConfig()
		iqCfg.Seed = *seed
		iqCfg.Exec = ecfg
		iq, err := core.FitInadequacy(g, split.Labeled, pred, "paper", iqCfg)
		if err != nil {
			return err
		}
		tau = *prune
		if tau < 0 {
			// Cache-aware budgeting: prompts already answered on disk cost
			// zero marginal tokens, so a warm cache admits more queries
			// under the same budget.
			var cached func(string) bool
			if pcache != nil {
				cached = func(promptText string) bool {
					return pcache.Contains(promptcache.KeyOf(cacheNS, promptText))
				}
			}
			perQ, perN := core.EstimateQueryTokensCompressed(newCtx(), method, split.Query, 200, ecfg.Compress, cached)
			var ok bool
			tau, ok = core.TauForBudget(*budget, len(split.Query), perQ, perN)
			if !ok {
				return fmt.Errorf("budget %.0f tokens is infeasible for %d queries: even pruning every prompt needs %.0f tokens",
					*budget, len(split.Query), float64(len(split.Query))*(perQ-perN))
			}
			fmt.Fprintf(stdout, "budget %.0f tokens -> tau = %.2f (perQuery %.0f, perNeighborText %.0f)\n", *budget, tau, perQ, perN)
		}
		plan = core.PrunePlan(iq, g, split.Query, tau)
	}
	if *savePlan != "" {
		f, err := os.Create(*savePlan)
		if err != nil {
			return err
		}
		err = core.SavePlan(f, plan)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("saving plan: %w", err)
		}
		fmt.Fprintf(stdout, "plan written to %s (%d queries, %d pruned)\n", *savePlan, len(plan.Queries), len(plan.Prune))
	}

	var optimized *core.Results
	if *boost {
		fmt.Fprintln(stdout, "executing with query boosting...")
		optimized, _, err = core.BoostWith(newCtx(), method, pred, plan, core.DefaultBoostConfig(), ecfg)
	} else {
		fmt.Fprintln(stdout, "executing plan...")
		optimized, err = core.ExecuteWith(newCtx(), method, pred, plan, ecfg)
	}
	if err := tolerate("optimized run", err); err != nil {
		return err
	}

	// Accuracy is scored against the full plan (an unanswered query
	// counts as wrong) with coverage alongside, so partial results after
	// failures cannot silently inflate the numbers.
	baseAcc, baseCov := core.PlanAccuracy(g, split.Query, base.Pred)
	optAcc, optCov := core.PlanAccuracy(g, plan.Queries, optimized.Pred)
	t := tablefmt.New("\nresults", "run", "accuracy (%)", "coverage (%)", "input tokens", "equipped", "rounds")
	t.AddRow("baseline",
		tablefmt.Pct(baseAcc), tablefmt.Pct(baseCov),
		tablefmt.Int(int64(base.Meter.InputTokens())),
		fmt.Sprint(base.Equipped), fmt.Sprint(base.Rounds))
	name := "optimized"
	if tau > 0 {
		name += fmt.Sprintf(" (prune %.0f%%", 100*tau)
		if *boost {
			name += " + boost"
		}
		name += ")"
	} else if *boost {
		name += " (boost)"
	}
	t.AddRow(name,
		tablefmt.Pct(optAcc), tablefmt.Pct(optCov),
		tablefmt.Int(int64(optimized.Meter.InputTokens())),
		fmt.Sprint(optimized.Equipped), fmt.Sprint(optimized.Rounds))
	fmt.Fprint(stdout, t.String())

	if n := base.SurrogateAnswered() + optimized.SurrogateAnswered(); n > 0 {
		fmt.Fprintf(stdout, "\nsurrogate-answered queries (LLM path failed): baseline %d, optimized %d\n",
			base.SurrogateAnswered(), optimized.SurrogateAnswered())
	}
	if injector != nil {
		st := injector.Stats()
		fmt.Fprintf(stdout, "injected faults: %d errors, %d hangs, %d garbage (%d passed)\n",
			st.Errors, st.Hangs, st.Garbage, st.Passed)
	}

	saved := base.Meter.InputTokens() - optimized.Meter.InputTokens()
	if saved != 0 {
		fmt.Fprintf(stdout, "\ninput tokens saved vs baseline: %s (%.1f%%)\n",
			tablefmt.Int(int64(saved)), 100*float64(saved)/float64(base.Meter.InputTokens()))
	}
	if optimized.PseudoLabelUses > 0 {
		fmt.Fprintf(stdout, "pseudo-label enrichments during boosting: %d\n", optimized.PseudoLabelUses)
	}
	if pcache != nil {
		st := pcache.Stats()
		fmt.Fprintf(stderr, "prompt cache: %d hits, %d misses, %d evictions, %d entries (%s)\n",
			st.Hits, st.Misses, st.Evictions, st.Entries, tablefmt.Int(st.Bytes))
	}
	return dumpMetrics()
}
