// Command mqorun executes an optimized multi-query node-classification
// plan end-to-end on one dataset: it fits the text-inadequacy measure,
// prunes to the requested token budget (or fraction), optionally boosts
// with pseudo-label scheduling, and reports accuracy and token usage
// against the unoptimized baseline.
//
// Usage:
//
//	mqorun -dataset cora -method 2-hop -prune 0.2 -boost
//	mqorun -dataset pubmed -method sns -budget 1200000
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/predictors"
	"repro/internal/tablefmt"
	"repro/internal/tag"
	"repro/internal/xrand"
)

func methodByName(name string) (predictors.Method, error) {
	switch strings.ToLower(name) {
	case "vanilla":
		return predictors.Vanilla{}, nil
	case "1-hop", "1hop":
		return predictors.KHopRandom{K: 1}, nil
	case "2-hop", "2hop":
		return predictors.KHopRandom{K: 2}, nil
	case "sns":
		return predictors.SNS{}, nil
	default:
		return nil, fmt.Errorf("unknown method %q (vanilla, 1-hop, 2-hop, sns)", name)
	}
}

func main() {
	var (
		dsName      = flag.String("dataset", "cora", "dataset name: "+strings.Join(tag.SortedNames(), ", "))
		mName       = flag.String("method", "2-hop", "prediction method: vanilla, 1-hop, 2-hop, sns")
		model       = flag.String("model", "gpt-3.5", "LLM profile: gpt-3.5 or gpt-4o-mini")
		seed        = flag.Uint64("seed", 1, "deterministic seed")
		scale       = flag.Float64("scale", 1.0, "dataset scale factor")
		queries     = flag.Int("queries", 0, "query count (0 = dataset default)")
		prune       = flag.Float64("prune", -1, "prune fraction tau in [0,1] (overrides -budget)")
		budget      = flag.Float64("budget", 0, "input-token budget B (0 = unlimited)")
		boost       = flag.Bool("boost", false, "apply query boosting")
		m           = flag.Int("m", 4, "max neighbors per prompt")
		workers     = flag.Int("workers", 1, "concurrent LLM queries (results are identical for any value)")
		qps         = flag.Float64("qps", 0, "max queries per second across all workers (0 = unlimited)")
		qTimeout    = flag.Duration("query-timeout", 0, "per-query deadline; hung calls are abandoned (0 = none)")
		breakerN    = flag.Int("breaker", 0, "consecutive transient failures that open the circuit breaker (0 = disabled)")
		breakerCool = flag.Duration("breaker-cooldown", 0, "how long the breaker stays open before probing (0 = 30s default)")
		fallback    = flag.Bool("fallback", false, "answer permanently-failed queries with the surrogate classifier")
		faultErr    = flag.Float64("fault-error", 0, "chaos: fraction of prompts that fail with an injected 503")
		faultHang   = flag.Float64("fault-hang", 0, "chaos: fraction of prompts that hang until the query timeout")
		faultGarble = flag.Float64("fault-garbage", 0, "chaos: fraction of prompts answered off-template")
		savePlan    = flag.String("save-plan", "", "write the optimized plan to this JSON file")
		metricsDump = flag.Bool("metrics-dump", false, "print the metrics registry (Prometheus text format) at exit")
		metricsJSON = flag.String("metrics-json", "", "write the metrics registry snapshot to this JSON file at exit")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "mqorun: %v\n", err)
		os.Exit(1)
	}

	// The registry is installed as the process default, so every layer
	// (core execution, sim, facade) records without explicit wiring.
	var reg *obs.Registry
	if *metricsDump || *metricsJSON != "" {
		reg = obs.NewRegistry()
		obs.SetDefault(reg)
	}
	dumpMetrics := func() {
		if reg == nil {
			return
		}
		if *metricsDump {
			fmt.Println("\nmetrics:")
			if err := reg.WritePrometheus(os.Stdout); err != nil {
				fail(err)
			}
		}
		if *metricsJSON != "" {
			data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*metricsJSON, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("metrics snapshot written to %s\n", *metricsJSON)
		}
	}

	spec, err := tag.SpecByName(*dsName)
	if err != nil {
		fail(err)
	}
	method, err := methodByName(*mName)
	if err != nil {
		fail(err)
	}
	var profile llm.Profile
	switch *model {
	case "gpt-3.5":
		profile = llm.GPT35()
	case "gpt-4o-mini":
		profile = llm.GPT4oMini()
	default:
		fail(fmt.Errorf("unknown model %q", *model))
	}

	fmt.Printf("generating %s (scale %.2f)...\n", spec.Display, *scale)
	g := tag.Generate(spec, *seed, tag.Options{Scale: *scale})
	q := spec.QueryCount
	if *queries > 0 {
		q = *queries
	}
	srng := xrand.New(*seed).SplitString("mqorun/split")
	var split tag.Split
	if spec.LabeledPerClass > 0 {
		split = g.SplitPerClass(srng, spec.LabeledPerClass, q)
	} else {
		split = g.SplitFraction(srng, spec.LabeledFrac, q)
	}

	newCtx := func() *predictors.Context {
		return &predictors.Context{
			Graph: g,
			Known: predictors.KnownFromSplit(g, split),
			M:     *m,
			Seed:  *seed,
		}
	}
	sim := llm.NewSim(profile, g.Vocab, g.Classes, *seed+7)
	var pred llm.Predictor = sim
	var injector *llm.FaultInjector
	if *faultErr > 0 || *faultHang > 0 || *faultGarble > 0 {
		if *faultHang > 0 && *qTimeout <= 0 {
			fail(fmt.Errorf("-fault-hang requires -query-timeout, or hung prompts block forever"))
		}
		injector, err = llm.NewFaultInjector(sim, llm.FaultConfig{
			Seed:        *seed + 13,
			ErrorRate:   *faultErr,
			HangRate:    *faultHang,
			GarbageRate: *faultGarble,
		})
		if err != nil {
			fail(err)
		}
		pred = injector
	}
	ecfg := core.ExecConfig{
		Workers:      *workers,
		QPS:          *qps,
		QueryTimeout: *qTimeout,
		Breaker:      batch.BreakerConfig{Threshold: *breakerN, Cooldown: *breakerCool},
	}
	if *fallback {
		sur, err := core.FitSurrogate(g, split.Labeled, core.SurrogateConfig{Seed: *seed})
		if err != nil {
			fail(fmt.Errorf("fitting fallback surrogate: %w", err))
		}
		ecfg.Fallback = sur
	}

	// Per-query failures come back as a *QueryErrors alongside partial
	// results: report and keep going rather than voiding the whole run.
	tolerate := func(stage string, err error) {
		if err == nil {
			return
		}
		var qe *core.QueryErrors
		if errors.As(err, &qe) {
			fmt.Fprintf(os.Stderr, "mqorun: %s: %v (continuing with partial results)\n", stage, qe)
			return
		}
		fail(err)
	}

	// Baseline.
	fmt.Printf("running baseline %s over %d queries (%d workers)...\n", method.Name(), len(split.Query), *workers)
	base, err := core.ExecuteWith(newCtx(), method, pred, core.Plan{Queries: split.Query}, ecfg)
	tolerate("baseline", err)

	// Optimized plan.
	plan := core.Plan{Queries: split.Query}
	tau := 0.0
	if *prune >= 0 || *budget > 0 {
		fmt.Println("fitting text-inadequacy measure...")
		iqCfg := core.DefaultInadequacyConfig()
		iqCfg.Seed = *seed
		iqCfg.Exec = ecfg
		iq, err := core.FitInadequacy(g, split.Labeled, pred, "paper", iqCfg)
		if err != nil {
			fail(err)
		}
		tau = *prune
		if tau < 0 {
			perQ, perN := core.EstimateQueryTokens(newCtx(), method, split.Query, 200)
			var ok bool
			tau, ok = core.TauForBudget(*budget, len(split.Query), perQ, perN)
			if !ok {
				fail(fmt.Errorf("budget %.0f tokens is infeasible for %d queries: even pruning every prompt needs %.0f tokens",
					*budget, len(split.Query), float64(len(split.Query))*(perQ-perN)))
			}
			fmt.Printf("budget %.0f tokens -> tau = %.2f (perQuery %.0f, perNeighborText %.0f)\n", *budget, tau, perQ, perN)
		}
		plan = core.PrunePlan(iq, g, split.Query, tau)
	}
	if *savePlan != "" {
		f, err := os.Create(*savePlan)
		if err != nil {
			fail(err)
		}
		err = core.SavePlan(f, plan)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(fmt.Errorf("saving plan: %w", err))
		}
		fmt.Printf("plan written to %s (%d queries, %d pruned)\n", *savePlan, len(plan.Queries), len(plan.Prune))
	}

	var optimized *core.Results
	if *boost {
		fmt.Println("executing with query boosting...")
		optimized, _, err = core.BoostWith(newCtx(), method, pred, plan, core.DefaultBoostConfig(), ecfg)
	} else {
		fmt.Println("executing plan...")
		optimized, err = core.ExecuteWith(newCtx(), method, pred, plan, ecfg)
	}
	tolerate("optimized run", err)

	// Accuracy is scored against the full plan (an unanswered query
	// counts as wrong) with coverage alongside, so partial results after
	// failures cannot silently inflate the numbers.
	baseAcc, baseCov := core.PlanAccuracy(g, split.Query, base.Pred)
	optAcc, optCov := core.PlanAccuracy(g, plan.Queries, optimized.Pred)
	t := tablefmt.New("\nresults", "run", "accuracy (%)", "coverage (%)", "input tokens", "equipped", "rounds")
	t.AddRow("baseline",
		tablefmt.Pct(baseAcc), tablefmt.Pct(baseCov),
		tablefmt.Int(int64(base.Meter.InputTokens())),
		fmt.Sprint(base.Equipped), fmt.Sprint(base.Rounds))
	name := "optimized"
	if tau > 0 {
		name += fmt.Sprintf(" (prune %.0f%%", 100*tau)
		if *boost {
			name += " + boost"
		}
		name += ")"
	} else if *boost {
		name += " (boost)"
	}
	t.AddRow(name,
		tablefmt.Pct(optAcc), tablefmt.Pct(optCov),
		tablefmt.Int(int64(optimized.Meter.InputTokens())),
		fmt.Sprint(optimized.Equipped), fmt.Sprint(optimized.Rounds))
	fmt.Print(t.String())

	if n := base.SurrogateAnswered() + optimized.SurrogateAnswered(); n > 0 {
		fmt.Printf("\nsurrogate-answered queries (LLM path failed): baseline %d, optimized %d\n",
			base.SurrogateAnswered(), optimized.SurrogateAnswered())
	}
	if injector != nil {
		st := injector.Stats()
		fmt.Printf("injected faults: %d errors, %d hangs, %d garbage (%d passed)\n",
			st.Errors, st.Hangs, st.Garbage, st.Passed)
	}

	saved := base.Meter.InputTokens() - optimized.Meter.InputTokens()
	if saved != 0 {
		fmt.Printf("\ninput tokens saved vs baseline: %s (%.1f%%)\n",
			tablefmt.Int(int64(saved)), 100*float64(saved)/float64(base.Meter.InputTokens()))
	}
	if optimized.PseudoLabelUses > 0 {
		fmt.Printf("pseudo-label enrichments during boosting: %d\n", optimized.PseudoLabelUses)
	}
	dumpMetrics()
}
