package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestEveryEmittedMetricIsDocumented runs an instrumented execution
// that lights up every subsystem — replicas with hedging, a breaker,
// a QPS limiter, the disk cache, fault injection with retries and the
// surrogate fallback, boosting, prompt compression, tracing and the
// SLO engine — then
// checks each metric family the live registry emitted has a row in
// README.md's catalog. A new metric without documentation fails here,
// not in a user's dashboard.
func TestEveryEmittedMetricIsDocumented(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	args := []string{
		"-dataset", "cora", "-scale", "0.1", "-queries", "25", "-seed", "1",
		"-method", "sns", "-prune", "0.3", "-boost", "-fallback",
		"-workers", "4", "-qps", "10000", "-query-timeout", "5s",
		"-breaker", "50", "-breaker-cooldown", "10ms",
		"-replicas", "3", "-hedge", "-hedge-after", "1ms", "-affinity",
		"-cache-dir", filepath.Join(dir, "cache"),
		"-compress", "1", "-target-tokens", "300",
		"-fault-error", "0.1",
		"-trace-sample", "1", "-slo-latency-p99", "30s",
		"-metrics-json", metricsPath,
	}
	if err := run(args, io.Discard, io.Discard); err != nil {
		t.Fatalf("instrumented run: %v", err)
	}

	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []obs.MetricSnapshot
	if err := json.Unmarshal(raw, &snaps); err != nil {
		t.Fatalf("parsing %s: %v", metricsPath, err)
	}
	if len(snaps) == 0 {
		t.Fatal("instrumented run emitted no metrics")
	}

	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(readme)

	families := map[string]bool{}
	for _, s := range snaps {
		if strings.HasPrefix(s.Name, "mqo_") {
			families[s.Name] = true
		}
	}
	if len(families) < 20 {
		t.Fatalf("only %d mqo_* families emitted — did the instrumented flags stop exercising the stack?", len(families))
	}

	var missing []string
	for name := range families {
		if !strings.Contains(doc, "`"+name) {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("metric families emitted by a live run but absent from README.md's catalog:\n  %s",
			strings.Join(missing, "\n  "))
	}
}
