package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"

	"repro/internal/cliflags"
)

// TestUsageCoversSharedExecFlags pins the CLI-parity contract: every
// flag in the shared execution group (internal/cliflags) is registered
// here, so mqorun and mqobench never drift apart again the way the
// missing -breaker/-breaker-cooldown flags did.
func TestUsageCoversSharedExecFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-h"}, &stdout, &stderr)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("run(-h) = %v, want flag.ErrHelp", err)
	}
	usage := stderr.String()
	for _, name := range cliflags.Names() {
		if !strings.Contains(usage, "-"+name) {
			t.Errorf("usage text is missing shared flag -%s", name)
		}
	}
}

// TestSharedExecFlagsParse asserts the shared flags are not just
// printed but actually accepted (a bad value must fail, a good one must
// reach execution).
func TestSharedExecFlagsParse(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-dataset", "cora", "-scale", "0.05", "-queries", "5",
		"-workers", "2", "-replicas", "3", "-hedge", "-hedge-after", "1ms",
		"-breaker", "3", "-breaker-cooldown", "1s", "-query-timeout", "5s",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run with full shared flag set: %v\nstderr:\n%s", err, stderr.String())
	}
	if err := run([]string{"-breaker", "not-a-number"}, &stdout, &stderr); err == nil {
		t.Fatal("bad -breaker value parsed anyway")
	}
}
