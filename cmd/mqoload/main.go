// Command mqoload replays a load scenario against the online serving
// tier and reports what the tail actually looked like.
//
// Usage:
//
//	mqoload -preset smoke                      # in-process CI gate
//	mqoload -preset flood -out BENCH_load.json # append a trajectory row
//	mqoload -scenario s.json -target http://host:8080
//	mqoload -list                              # show built-in scenarios
//
// The scenario (a JSON document, see internal/load) pins the dataset,
// the open-loop arrival process, the tenant mix, the fault profile and
// the serving-tier topology; with -target empty the command builds the
// same stack llmserve -serve mounts, in process. The exit code is the
// verdict: nonzero when -require-slo is set and the SLO fails (or the
// client- and server-side verdicts disagree), or when the decode-error
// share exceeds -max-decode-errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cliflags"
	"repro/internal/load"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "mqoload: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flags come from
// args, the report goes to stdout, progress to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mqoload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list built-in scenarios and exit")
	var lf cliflags.Load
	lf.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, sc := range load.Presets() {
			fmt.Fprintf(stdout, "%-8s %s @ %.0f/s, %d requests, %d tenants\n",
				sc.Name, sc.Arrival.Process, sc.Arrival.RatePerSec, sc.Requests, sc.Tenants.Count)
		}
		return nil
	}
	sc, err := lf.Scenario()
	if err != nil {
		return err
	}

	rep, err := load.Run(sc, load.Options{
		TargetURL: lf.Target,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stderr, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}

	enc, err := sc.Encode()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "scenario:\n%s\n\nreport: %s\n", enc, rep.Summary())
	if lf.Out != "" {
		if err := rep.AppendJSONL(lf.Out); err != nil {
			return fmt.Errorf("appending report to %s: %w", lf.Out, err)
		}
		fmt.Fprintf(stdout, "appended row to %s\n", lf.Out)
	}

	// Gates: turn the observation into an exit code for CI.
	if share := float64(rep.DecodeErrors) / float64(rep.Requests); share > lf.MaxDecodeErrors {
		return fmt.Errorf("decode-error share %.3f exceeds -max-decode-errors %.3f",
			share, lf.MaxDecodeErrors)
	}
	if lf.RequireSLO {
		if !rep.SLOPass || (rep.SLO.Configured && !rep.SLO.Pass) {
			return fmt.Errorf("SLO violated: client p99 %.1fms, server %+v", rep.P99MS, rep.SLO)
		}
		if !rep.SLOAgree {
			return fmt.Errorf("client and server SLO verdicts disagree: client pass=%v, server pass=%v",
				rep.SLOPass, rep.SLO.Pass)
		}
	}
	return nil
}
