package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cliflags"
)

// TestUsageCoversLoadFlags is mqoload's half of the CLI-parity
// contract: the load flag group must be registered wholesale via
// cliflags.Load, so LoadNames() and the usage text cannot drift.
func TestUsageCoversLoadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-h"}, &stdout, &stderr)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("run(-h) = %v, want flag.ErrHelp", err)
	}
	usage := stderr.String()
	for _, name := range cliflags.LoadNames() {
		if !strings.Contains(usage, "-"+name) {
			t.Errorf("usage text is missing load flag -%s", name)
		}
	}
}

// TestListAndErrors pins the cheap paths: -list prints the presets,
// and the mutually-exclusive / missing-scenario cases error out.
func TestListAndErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatalf("-list: %v", err)
	}
	for _, name := range []string{"smoke", "steady", "burst", "flood", "chaos"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing preset %q", name)
		}
	}
	if err := run([]string{}, &stdout, &stderr); err == nil {
		t.Error("no scenario selected should error")
	}
	if err := run([]string{"-preset", "nope"}, &stdout, &stderr); err == nil {
		t.Error("unknown preset should error")
	}
	if err := run([]string{"-preset", "smoke", "-scenario", "x.json"}, &stdout, &stderr); err == nil {
		t.Error("-preset with -scenario should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"nme": "x"}`), 0o644)
	if err := run([]string{"-scenario", bad}, &stdout, &stderr); err == nil {
		t.Error("typoed scenario file should fail strict decode")
	}
}

// TestRunSmokeEndToEnd drives the trimmed smoke preset through the
// whole command — in-process tier, SLO gate armed, report appended —
// and checks the appended row parses with the fields the acceptance
// gate greps for.
func TestRunSmokeEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-preset", "smoke", "-requests", "100",
		"-out", out, "-require-slo", "-max-decode-errors", "0",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "report:") {
		t.Errorf("stdout missing report summary:\n%s", stdout.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var row map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(data), &row); err != nil {
		t.Fatalf("appended row is not one JSON object: %v\n%s", err, data)
	}
	for _, key := range []string{"scenario", "p50_ms", "p95_ms", "p99_ms", "tokens_per_query", "slo", "slo_pass", "slo_agree"} {
		if _, ok := row[key]; !ok {
			t.Errorf("appended row missing %q:\n%s", key, data)
		}
	}
	if row["scenario"] != "smoke" {
		t.Errorf("row scenario = %v, want smoke", row["scenario"])
	}
}
