// Command mqobench regenerates the paper's tables and figures.
//
// Usage:
//
//	mqobench -exp table4            # one experiment at paper scale
//	mqobench -exp all -fast         # everything, reduced scale
//	mqobench -list                  # show available experiment ids
//
// Output is plain text: the same rows/series the paper reports,
// produced by the simulated substrate described in DESIGN.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/promptcache"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "mqobench: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flags come from
// args, experiment output goes to stdout, diagnostics to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mqobench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp         = fs.String("exp", "", "experiment id (or 'all')")
		seed        = fs.Uint64("seed", 1, "deterministic seed")
		seeds       = fs.Int("seeds", 1, "repeat each experiment under this many consecutive seeds")
		fast        = fs.Bool("fast", false, "reduced datasets/queries for a quick pass")
		list        = fs.Bool("list", false, "list experiment ids and exit")
		jsonOut     = fs.Bool("json", false, "emit one JSON object per experiment instead of text")
		metricsDump = fs.Bool("metrics-dump", false, "print the metrics registry (Prometheus text format) at exit")
		metricsJSON = fs.String("metrics-json", "", "write the metrics registry snapshot to this JSON file at exit")
	)
	var ex cliflags.Exec
	ex.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Installed as the process default so the experiment internals
	// (plan execution, boosting, the simulator) record token and query
	// metrics without any per-experiment wiring.
	var reg *obs.Registry
	if *metricsDump || *metricsJSON != "" {
		reg = obs.NewRegistry()
		ex.ApplyObs(reg)
		obs.SetDefault(reg)
		defer obs.SetDefault(nil)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-20s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *exp == "" {
		return fmt.Errorf("-exp is required (use -list to see ids)")
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1")
	}
	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.ByID(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q; known: %v", *exp, experiments.IDs())
		}
		toRun = []experiments.Experiment{e}
	}

	// One shared disk cache across every experiment and seed: namespaces
	// (model identity + sim seed + template version) keep their entries
	// disjoint, and a repeated bench run answers from disk.
	var pcache *promptcache.Cache
	if ex.CacheDir != "" {
		ccfg := promptcache.Config{MaxBytes: ex.CacheMaxBytes, TTL: ex.CacheTTL}
		if reg != nil {
			ccfg.Obs = reg
		}
		var err error
		pcache, err = promptcache.Open(ex.CacheDir, ccfg)
		if err != nil {
			return fmt.Errorf("opening prompt cache: %w", err)
		}
		defer pcache.Close()
	}

	enc := json.NewEncoder(stdout)
	for _, e := range toRun {
		for rep := 0; rep < *seeds; rep++ {
			s := *seed + uint64(rep)
			cfg := experiments.Config{
				Seed: s, Fast: *fast,
				Workers: ex.Workers, QPS: ex.QPS, QueryTimeout: ex.QueryTimeout,
				Disk:     pcache,
				Breaker:  ex.BreakerConfig(),
				Replicas: ex.Replicas,
				Hedge:    ex.Hedge, HedgeAfter: ex.HedgeAfter,
				Affinity: ex.Affinity,
				Compress: ex.Compress, TargetTokens: ex.TargetTokens,
			}
			start := time.Now()
			out, err := e.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s (seed %d) failed: %w", e.ID, s, err)
			}
			if *jsonOut {
				if err := enc.Encode(map[string]any{
					"id":      e.ID,
					"title":   e.Title,
					"seed":    s,
					"fast":    *fast,
					"seconds": time.Since(start).Seconds(),
					"output":  out,
				}); err != nil {
					return fmt.Errorf("encoding %s: %w", e.ID, err)
				}
				continue
			}
			label := e.ID
			if *seeds > 1 {
				label = fmt.Sprintf("%s (seed %d)", e.ID, s)
			}
			fmt.Fprintf(stdout, "== %s: %s (%.1fs)\n\n%s\n", label, e.Title, time.Since(start).Seconds(), out)
		}
	}

	if reg != nil {
		if *metricsDump {
			fmt.Fprintln(stdout, "== metrics")
			if err := reg.WritePrometheus(stdout); err != nil {
				return fmt.Errorf("writing metrics: %w", err)
			}
		}
		if *metricsJSON != "" {
			data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
			if err != nil {
				return fmt.Errorf("encoding metrics: %w", err)
			}
			if err := os.WriteFile(*metricsJSON, append(data, '\n'), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", *metricsJSON, err)
			}
			fmt.Fprintf(stderr, "metrics snapshot written to %s\n", *metricsJSON)
		}
	}
	return nil
}
