// Command mqobench regenerates the paper's tables and figures.
//
// Usage:
//
//	mqobench -exp table4            # one experiment at paper scale
//	mqobench -exp all -fast         # everything, reduced scale
//	mqobench -list                  # show available experiment ids
//
// Output is plain text: the same rows/series the paper reports,
// produced by the simulated substrate described in DESIGN.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/promptcache"
)

func main() {
	var (
		exp         = flag.String("exp", "", "experiment id (or 'all')")
		seed        = flag.Uint64("seed", 1, "deterministic seed")
		seeds       = flag.Int("seeds", 1, "repeat each experiment under this many consecutive seeds")
		fast        = flag.Bool("fast", false, "reduced datasets/queries for a quick pass")
		workers     = flag.Int("workers", 1, "concurrent LLM queries during plan execution (outputs are identical for any value)")
		qps         = flag.Float64("qps", 0, "max queries per second across all workers (0 = unlimited)")
		qTimeout    = flag.Duration("query-timeout", 0, "per-query deadline during plan execution (0 = none; the faults experiment defaults to 50ms)")
		cacheDir    = flag.String("cache-dir", "", "persistent prompt-cache directory shared by all experiments (empty = no disk cache)")
		cacheMax    = flag.Int64("cache-max-bytes", 0, "prompt-cache byte budget across shards (0 = unbounded)")
		cacheTTL    = flag.Duration("cache-ttl", 0, "prompt-cache entry lifetime (0 = never expires)")
		list        = flag.Bool("list", false, "list experiment ids and exit")
		jsonOut     = flag.Bool("json", false, "emit one JSON object per experiment instead of text")
		metricsDump = flag.Bool("metrics-dump", false, "print the metrics registry (Prometheus text format) at exit")
		metricsJSON = flag.String("metrics-json", "", "write the metrics registry snapshot to this JSON file at exit")
	)
	flag.Parse()

	// Installed as the process default so the experiment internals
	// (plan execution, boosting, the simulator) record token and query
	// metrics without any per-experiment wiring.
	var reg *obs.Registry
	if *metricsDump || *metricsJSON != "" {
		reg = obs.NewRegistry()
		obs.SetDefault(reg)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "mqobench: -exp is required (use -list to see ids)")
		os.Exit(2)
	}

	if *seeds < 1 {
		fmt.Fprintln(os.Stderr, "mqobench: -seeds must be >= 1")
		os.Exit(2)
	}
	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mqobench: unknown experiment %q; known: %v\n", *exp, experiments.IDs())
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	// One shared disk cache across every experiment and seed: namespaces
	// (model identity + sim seed + template version) keep their entries
	// disjoint, and a repeated bench run answers from disk.
	var pcache *promptcache.Cache
	if *cacheDir != "" {
		ccfg := promptcache.Config{MaxBytes: *cacheMax, TTL: *cacheTTL}
		if reg != nil {
			ccfg.Obs = reg
		}
		var err error
		pcache, err = promptcache.Open(*cacheDir, ccfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mqobench: opening prompt cache: %v\n", err)
			os.Exit(1)
		}
		defer pcache.Close()
	}

	enc := json.NewEncoder(os.Stdout)
	for _, e := range toRun {
		for rep := 0; rep < *seeds; rep++ {
			s := *seed + uint64(rep)
			cfg := experiments.Config{Seed: s, Fast: *fast, Workers: *workers, QPS: *qps, QueryTimeout: *qTimeout, Disk: pcache}
			start := time.Now()
			out, err := e.Run(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mqobench: %s (seed %d) failed: %v\n", e.ID, s, err)
				os.Exit(1)
			}
			if *jsonOut {
				if err := enc.Encode(map[string]any{
					"id":      e.ID,
					"title":   e.Title,
					"seed":    s,
					"fast":    *fast,
					"seconds": time.Since(start).Seconds(),
					"output":  out,
				}); err != nil {
					fmt.Fprintf(os.Stderr, "mqobench: encoding %s: %v\n", e.ID, err)
					os.Exit(1)
				}
				continue
			}
			label := e.ID
			if *seeds > 1 {
				label = fmt.Sprintf("%s (seed %d)", e.ID, s)
			}
			fmt.Printf("== %s: %s (%.1fs)\n\n%s\n", label, e.Title, time.Since(start).Seconds(), out)
		}
	}

	if reg != nil {
		if *metricsDump {
			fmt.Println("== metrics")
			if err := reg.WritePrometheus(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "mqobench: writing metrics: %v\n", err)
				os.Exit(1)
			}
		}
		if *metricsJSON != "" {
			data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "mqobench: encoding metrics: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*metricsJSON, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "mqobench: writing %s: %v\n", *metricsJSON, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "metrics snapshot written to %s\n", *metricsJSON)
		}
	}
}
