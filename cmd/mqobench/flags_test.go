package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"

	"repro/internal/cliflags"
)

// TestUsageCoversSharedExecFlags is mqobench's half of the CLI-parity
// contract (see cmd/mqorun/flags_test.go): the shared execution flag
// group must be registered wholesale, not cherry-picked — mqobench
// historically lacked -breaker and -breaker-cooldown entirely.
func TestUsageCoversSharedExecFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-h"}, &stdout, &stderr)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("run(-h) = %v, want flag.ErrHelp", err)
	}
	usage := stderr.String()
	for _, name := range cliflags.Names() {
		if !strings.Contains(usage, "-"+name) {
			t.Errorf("usage text is missing shared flag -%s", name)
		}
	}
}

// TestSharedExecFlagsParse drives one tiny experiment through the full
// shared flag set, and pins the error paths: unknown experiment ids and
// malformed flag values must both surface as errors.
func TestSharedExecFlagsParse(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-list",
		"-workers", "2", "-replicas", "3", "-hedge", "-hedge-after", "1ms",
		"-breaker", "3", "-breaker-cooldown", "1s", "-query-timeout", "5s",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run -list with full shared flag set: %v\nstderr:\n%s", err, stderr.String())
	}
	if stdout.Len() == 0 {
		t.Fatal("-list printed nothing")
	}
	if err := run([]string{"-exp", "no-such-experiment"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown experiment id succeeded")
	}
	if err := run([]string{"-breaker-cooldown", "not-a-duration"}, &stdout, &stderr); err == nil {
		t.Fatal("bad -breaker-cooldown value parsed anyway")
	}
}
