package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport drops a trace-report JSON into a temp file and returns
// its path.
func writeReport(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const goodSLO = `"slo": {"configured": true, "name": "query_latency_p99",
	"percentile": 0.99, "objective_ms": 30000, "samples": 2, "retained": 2,
	"observed_ms": 12.5, "violations": 0, "burn_rate": 0, "pass": true}`

// attributed builds one query ledger whose billed stages cover the
// given fraction of a 100ms total.
func attributed(name string, frac float64) string {
	billed := int64(frac * 100e6)
	return fmt.Sprintf(`{"trace_id": %[1]q, "name": %[1]q,
		"total_ns": 100000000, "billed_wall_ns": %[2]d, "billed_tokens": 10,
		"entries": [{"stage": "predict", "wall_ns": %[2]d, "tokens": 10, "billed": true}]}`,
		name, billed)
}

func TestTraceguardPassesFullyAttributedReport(t *testing.T) {
	p := writeReport(t, `{`+goodSLO+`, "stage_totals": [],
		"queries": [`+attributed("q1", 1.0)+`, `+attributed("q2", 0.95)+`]}`)
	var out, errOut bytes.Buffer
	if err := run([]string{"-trace", p, "-require-slo"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if !strings.Contains(out.String(), "2 queries fully attributed") ||
		!strings.Contains(out.String(), "slo query_latency_p99: pass") {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestTraceguardFailsOnUnattributedWallClock(t *testing.T) {
	p := writeReport(t, `{`+goodSLO+`, "stage_totals": [],
		"queries": [`+attributed("q1", 0.5)+`]}`)
	var out, errOut bytes.Buffer
	err := run([]string{"-trace", p}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "unattributed wall-clock") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(errOut.String(), "q1") {
		t.Fatalf("stderr names no offending query: %q", errOut.String())
	}
}

func TestTraceguardFailsOnMalformedSLOSection(t *testing.T) {
	// An unknown field in the slo object is the same break a /debug/slo
	// consumer would see — strict decoding must reject it.
	p := writeReport(t, `{"slo": {"configured": true, "pass": true, "bogus_field": 1},
		"stage_totals": [], "queries": [`+attributed("q1", 1.0)+`]}`)
	var out, errOut bytes.Buffer
	err := run([]string{"-trace", p}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "malformed /debug/slo JSON") {
		t.Fatalf("err = %v", err)
	}
}

func TestTraceguardFailsOnFailingSLO(t *testing.T) {
	p := writeReport(t, `{"slo": {"configured": true, "name": "query_latency_p99",
		"percentile": 0.99, "objective_ms": 1, "samples": 2, "retained": 2,
		"observed_ms": 50, "violations": 2, "burn_rate": 100, "pass": false},
		"stage_totals": [], "queries": [`+attributed("q1", 1.0)+`]}`)
	var out, errOut bytes.Buffer
	err := run([]string{"-trace", p, "-require-slo"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "failing") {
		t.Fatalf("err = %v", err)
	}
}

func TestTraceguardRequireSLOUnconfigured(t *testing.T) {
	p := writeReport(t, `{"slo": {"configured": false, "samples": 0, "retained": 0,
		"observed_ms": 0, "violations": 0, "burn_rate": 0, "pass": true},
		"stage_totals": [], "queries": [`+attributed("q1", 1.0)+`]}`)
	var out, errOut bytes.Buffer
	err := run([]string{"-trace", p, "-require-slo"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "not configured") {
		t.Fatalf("err = %v", err)
	}
}

func TestTraceguardEmptyReport(t *testing.T) {
	p := writeReport(t, `{`+goodSLO+`, "stage_totals": [], "queries": []}`)
	var out, errOut bytes.Buffer
	err := run([]string{"-trace", p}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "no query ledgers") {
		t.Fatalf("err = %v", err)
	}
}
