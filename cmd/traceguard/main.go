// Command traceguard is the CI gate for query-lifecycle tracing: it
// reads the trace report an instrumented run wrote (mqorun
// -trace-sample 1 -trace-json …) and fails when the books do not
// balance — a query whose billed stage walls cover less than the
// required fraction of its span means some layer is spending
// wall-clock no ledger stage accounts for, and a malformed SLO section
// means /debug/slo consumers would break.
//
// Usage:
//
//	traceguard -trace trace.json
//	traceguard -trace trace.json -min-attribution 0.95 -require-slo
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "traceguard: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("traceguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tracePath  = fs.String("trace", "", "trace report JSON written by mqorun -trace-json (required)")
		minAttrib  = fs.Float64("min-attribution", 0.9, "minimum fraction of each query's wall-clock that billed stages must cover")
		requireSLO = fs.Bool("require-slo", false, "additionally fail unless the SLO is configured and passing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	raw, err := os.ReadFile(*tracePath)
	if err != nil {
		return err
	}
	rep, err := decodeReport(raw)
	if err != nil {
		return err
	}

	if len(rep.Queries) == 0 {
		return fmt.Errorf("%s holds no query ledgers — was the run traced (-trace-sample 1)?", *tracePath)
	}
	bad := 0
	for _, q := range rep.Queries {
		if a := q.Attribution(); a < *minAttrib {
			bad++
			fmt.Fprintf(stderr, "traceguard: query %s (%s): billed stages cover %.1f%% of %s, need >= %.1f%%\n",
				q.Name, q.TraceID, 100*a, q.Total, 100**minAttrib)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d queries have unattributed wall-clock", bad, len(rep.Queries))
	}
	if *requireSLO {
		if !rep.SLO.Configured {
			return fmt.Errorf("SLO engine not configured (run with -slo-latency-p99)")
		}
		if !rep.SLO.Pass {
			return fmt.Errorf("SLO %q failing: observed %.1fms over %d samples against %.1fms objective (burn %.2f)",
				rep.SLO.Name, rep.SLO.ObservedMS, rep.SLO.Samples, rep.SLO.ObjectiveMS, rep.SLO.BurnRate)
		}
	}
	fmt.Fprintf(stdout, "traceguard: %d queries fully attributed (min %.1f%%)", len(rep.Queries), 100**minAttrib)
	if rep.SLO.Configured {
		verdict := "pass"
		if !rep.SLO.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(stdout, "; slo %s: %s", rep.SLO.Name, verdict)
	}
	fmt.Fprintln(stdout)
	return nil
}

// decodeReport parses the trace report strictly. The SLO section is
// the exact JSON /debug/slo serves, so an unknown or missing field
// here is the same break a monitoring consumer of that endpoint would
// see — it must fail the gate, not slide through a lenient decode.
func decodeReport(raw []byte) (obs.TraceReport, error) {
	var shape struct {
		SLO         json.RawMessage `json:"slo"`
		StageTotals json.RawMessage `json:"stage_totals"`
		Queries     json.RawMessage `json:"queries"`
	}
	if err := json.Unmarshal(raw, &shape); err != nil {
		return obs.TraceReport{}, fmt.Errorf("malformed trace report: %w", err)
	}
	if len(shape.SLO) == 0 {
		return obs.TraceReport{}, fmt.Errorf("trace report has no slo section")
	}
	var rep obs.TraceReport
	dec := json.NewDecoder(bytes.NewReader(shape.SLO))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep.SLO); err != nil {
		return obs.TraceReport{}, fmt.Errorf("malformed /debug/slo JSON: %w", err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return obs.TraceReport{}, fmt.Errorf("malformed trace report: %w", err)
	}
	return rep, nil
}
