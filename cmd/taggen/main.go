// Command taggen generates a synthetic TAG benchmark dataset and
// reports its statistics, class distribution and a sample of node text.
//
// Usage:
//
//	taggen -dataset cora
//	taggen -dataset ogbn-arxiv -scale 0.05 -sample 3 -seed 7
//	taggen -dataset pubmed -save pubmed.json     # persist a snapshot
//	taggen -load pubmed.json                     # inspect a snapshot
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/tablefmt"
	"repro/internal/tag"
)

func main() {
	var (
		name   = flag.String("dataset", "cora", "dataset name: "+strings.Join(tag.SortedNames(), ", "))
		seed   = flag.Uint64("seed", 1, "deterministic seed")
		scale  = flag.Float64("scale", 1.0, "node-count scale factor")
		sample = flag.Int("sample", 2, "number of sample nodes to print")
		save   = flag.String("save", "", "write the generated graph to this JSON snapshot file")
		load   = flag.String("load", "", "read the graph from a JSON snapshot instead of generating")
	)
	flag.Parse()

	var g *tag.Graph
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "taggen: %v\n", err)
			os.Exit(2)
		}
		g, err = tag.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "taggen: %v\n", err)
			os.Exit(1)
		}
		*name = g.Name
	}
	spec, err := tag.SpecByName(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "taggen: %v\n", err)
		os.Exit(2)
	}
	if g == nil {
		g = tag.Generate(spec, *seed, tag.Options{Scale: *scale})
	}
	if err := g.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "taggen: generated graph invalid: %v\n", err)
		os.Exit(1)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintf(os.Stderr, "taggen: %v\n", err)
			os.Exit(1)
		}
		err = tag.Save(f, g)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "taggen: saving snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("snapshot written to %s\n\n", *save)
	}
	st := tag.Summarize(g, spec)

	t := tablefmt.New(fmt.Sprintf("%s (seed %d, scale %.2f)", spec.Display, *seed, *scale),
		"stat", "value")
	t.AddRow("nodes", tablefmt.Int(int64(st.Nodes)))
	t.AddRow("edges", tablefmt.Int(int64(st.Edges)))
	t.AddRow("classes", fmt.Sprint(st.Classes))
	t.AddRow("edge homophily", tablefmt.F(st.Homophily, 3))
	t.AddRow("mean degree", tablefmt.F(st.MeanDegree, 2))
	t.AddRow("max degree", fmt.Sprint(st.MaxDegree))
	t.AddRow("isolated nodes", fmt.Sprint(st.Isolated))
	t.AddRow("paper-scale nodes", tablefmt.Int(int64(st.FullNodes)))
	t.AddRow("paper-scale edges", tablefmt.Int(int64(st.FullEdges)))
	fmt.Print(t.String())

	dist := tag.ClassDistribution(g)
	labels := make([]string, len(dist))
	values := make([]float64, len(dist))
	for i, c := range dist {
		labels[i] = g.Classes[i]
		values[i] = float64(c)
	}
	fmt.Println()
	fmt.Print(tablefmt.Bar("class distribution", labels, values, 40))

	for i := 0; i < *sample && i < g.NumNodes(); i++ {
		n := g.Nodes[i]
		fmt.Printf("\nnode %d  class=%s  ambiguity=%.2f  degree=%d\n  title: %s\n  abstract: %.160s...\n",
			n.ID, g.Classes[n.Label], n.Ambiguity, g.Degree(n.ID), n.Title, n.Abstract)
	}
}
