// Command servesmoke is the online-serving smoke test CI runs: it
// starts a real llmserve process with the serving tier enabled, drives
// mixed-tenant concurrent queries through POST /v1/query, and asserts
// the properties that make the tier worth shipping — cross-tenant
// coalescing actually happened (mqo_serve_coalesced_total > 0), every
// query was answered consistently, the SLO verdict is passing — then
// SIGTERMs the process and requires a clean drain.
//
// Usage:
//
//	servesmoke -llmserve ./llmserve.bin
//
// Exit status 0 means the smoke passed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "servesmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

func run() error {
	bin := flag.String("llmserve", "", "path to a built llmserve binary")
	timeout := flag.Duration("timeout", 60*time.Second, "overall deadline")
	flag.Parse()
	if *bin == "" {
		return fmt.Errorf("-llmserve is required")
	}
	deadline := time.Now().Add(*timeout)

	port, err := freePort()
	if err != nil {
		return err
	}
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	base := "http://" + addr

	cmd := exec.Command(*bin,
		"-addr", addr,
		"-serve",
		"-batch-window", "5ms",
		"-serve-workers", "4",
		"-trace-sample", "1",
		"-slo-latency-p99", "30s",
		"-access-log=false",
		"-drain", "10s",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting llmserve: %w", err)
	}
	defer cmd.Process.Kill()

	if err := waitHealthy(base, deadline); err != nil {
		return err
	}

	// Mixed-tenant concurrent load: T tenants ask about the same small
	// node set at once, so the micro-batch window and the serve memory
	// both get exercised; coalescing must absorb most of the fan-in.
	const tenants, nodes, rounds = 6, 8, 2
	var wg sync.WaitGroup
	errCh := make(chan error, tenants)
	for ten := 0; ten < tenants; ten++ {
		wg.Add(1)
		go func(ten int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for node := 0; node < nodes; node++ {
					if err := postQuery(base, fmt.Sprintf("tenant-%d", ten), node); err != nil {
						errCh <- fmt.Errorf("tenant %d node %d: %w", ten, node, err)
						return
					}
				}
			}
		}(ten)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}

	metrics, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	if err := requireMetric(metrics, "mqo_serve_queries_total"); err != nil {
		return err
	}
	if err := requireMetric(metrics, "mqo_serve_coalesced_total"); err != nil {
		return fmt.Errorf("%w (cross-tenant coalescing never happened)", err)
	}
	if err := requireMetric(metrics, "mqo_serve_window_flushes_total"); err != nil {
		return err
	}

	resp, err := http.Get(base + "/debug/slo")
	if err != nil {
		return fmt.Errorf("/debug/slo: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/slo verdict = %d, want 200", resp.StatusCode)
	}

	// Clean drain on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signaling llmserve: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("llmserve exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(time.Until(deadline)):
		return fmt.Errorf("llmserve did not drain before the deadline")
	}
	return nil
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

func waitHealthy(base string, deadline time.Time) error {
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("llmserve never became healthy")
}

func postQuery(base, tenant string, node int) error {
	req, err := http.NewRequest(http.MethodPost, base+"/v1/query",
		strings.NewReader(fmt.Sprintf(`{"node": %d}`, node)))
	if err != nil {
		return err
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var qr struct {
		Category string `json:"category"`
		Tenant   string `json:"tenant"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	if qr.Category == "" {
		return fmt.Errorf("empty category in %s", body)
	}
	if qr.Tenant != tenant {
		return fmt.Errorf("tenant %q echoed as %q", tenant, qr.Tenant)
	}
	return nil
}

// requireMetric asserts the Prometheus text exposition carries at
// least one sample of the family with a nonzero value.
func requireMetric(text, family string) error {
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] != "0" {
			return nil
		}
	}
	return fmt.Errorf("metric %s absent or zero in /metrics", family)
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(b), nil
}
