package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestHealthzFlipsToDraining is the regression test for the drain-
// window bug: /healthz used to answer 200 "ok" for the entire graceful
// shutdown, so load balancers kept routing to a dying process. The
// handler must flip to 503 with a "draining" body the moment shutdown
// begins.
func TestHealthzFlipsToDraining(t *testing.T) {
	var draining atomic.Bool
	requests := 7
	z := &healthz{
		model:    "sim-gpt-3.5",
		dataset:  "Cora",
		start:    time.Now().Add(-time.Minute),
		requests: func() int { return requests },
		draining: &draining,
	}

	get := func() (int, map[string]any) {
		t.Helper()
		rr := httptest.NewRecorder()
		z.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		var body map[string]any
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatalf("healthz body not JSON: %v", err)
		}
		return rr.Code, body
	}

	code, body := get()
	if code != http.StatusOK {
		t.Fatalf("live status = %d, want 200", code)
	}
	if body["status"] != "ok" {
		t.Fatalf("live body status = %v, want ok", body["status"])
	}
	if body["requests"] != float64(requests) {
		t.Fatalf("requests = %v, want %d", body["requests"], requests)
	}
	if body["uptime_seconds"].(float64) <= 0 {
		t.Fatal("uptime must be positive")
	}

	// The signal handler sets the flag before srv.Shutdown begins;
	// every health check from then on must advertise the drain.
	draining.Store(true)
	code, body = get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", code)
	}
	if body["status"] != "draining" {
		t.Fatalf("draining body status = %v, want draining", body["status"])
	}
}
