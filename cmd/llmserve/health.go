package main

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"
)

// healthz serves GET /healthz. Liveness is not the whole story: once
// the process has begun draining, load balancers must stop routing to
// it, so the handler flips to 503 "draining" the moment shutdown
// starts instead of reporting 200 until the listener dies mid-request.
type healthz struct {
	model    string
	dataset  string
	start    time.Time
	requests func() int
	// draining is set by the signal handler before srv.Shutdown runs.
	draining *atomic.Bool
}

func (z *healthz) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	status, code := "ok", http.StatusOK
	if z.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":         status,
		"model":          z.model,
		"dataset":        z.dataset,
		"uptime_seconds": time.Since(z.start).Seconds(),
		"requests":       z.requests(),
	})
}
