// Command llmserve exposes the simulated LLM behind an OpenAI-
// compatible chat-completions endpoint, so the optimization pipeline —
// or any OpenAI client — can be exercised across a real network
// boundary.
//
// Usage:
//
//	llmserve -dataset cora -profile gpt-3.5 -addr :8080
//	curl -s localhost:8080/v1/chat/completions -d '{
//	  "model": "sim", "messages": [{"role":"user","content":"<prompt>"}]}'
//
// The served model is deterministic for a given (dataset, profile,
// seed); prompts must follow the Table III templates (build them with
// the mqo package or the prompt package).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/llm"
	"repro/internal/tag"
)

func main() {
	var (
		dataset = flag.String("dataset", "cora", "dataset whose vocabulary/classes back the simulator")
		profile = flag.String("profile", "gpt-3.5", "simulated profile: gpt-3.5 or gpt-4o-mini")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		scale   = flag.Float64("scale", 1, "dataset scale factor")
		addr    = flag.String("addr", ":8080", "listen address")
		apiKey  = flag.String("api-key", "", "require this Bearer token when non-empty")
	)
	flag.Parse()

	spec, err := tag.SpecByName(*dataset)
	if err != nil {
		log.Fatalf("llmserve: %v", err)
	}
	g := tag.Generate(spec, *seed, tag.Options{Scale: *scale})

	var p llm.Profile
	switch *profile {
	case "gpt-3.5":
		p = llm.GPT35()
	case "gpt-4o-mini":
		p = llm.GPT4oMini()
	default:
		log.Fatalf("llmserve: unknown profile %q (want gpt-3.5 or gpt-4o-mini)", *profile)
	}

	h := llm.NewHandler(llm.NewSim(p, g.Vocab, g.Classes, *seed))
	h.RequireKey = *apiKey
	fmt.Printf("llmserve: %s profile over %s (%d nodes, %d classes) on %s%s\n",
		p.Name, g.Display, g.NumNodes(), len(g.Classes), *addr, llm.ChatCompletionsPath)
	log.Fatal(http.ListenAndServe(*addr, h))
}
