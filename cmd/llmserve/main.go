// Command llmserve exposes the simulated LLM behind an OpenAI-
// compatible chat-completions endpoint, so the optimization pipeline —
// or any OpenAI client — can be exercised across a real network
// boundary.
//
// Usage:
//
//	llmserve -dataset cora -profile gpt-3.5 -addr :8080
//	curl -s localhost:8080/v1/chat/completions -d '{
//	  "model": "sim", "messages": [{"role":"user","content":"<prompt>"}]}'
//
// Operational endpoints:
//
//	GET /metrics           Prometheus text-format metrics
//	GET /healthz           JSON liveness (uptime, served requests)
//	GET /debug/traces      last N request spans from the trace ring
//	GET /debug/querytrace  per-request span tree + stage ledger (?id=<trace>)
//	GET /debug/slo         SLO pass/fail + error-budget burn (503 on fail)
//	GET /debug/pprof/      runtime profiling (only with -pprof)
//
// Every request is logged as one structured JSON line (method, path,
// status, latency, tokens) on stderr.
//
// The served model is deterministic for a given (dataset, profile,
// seed); prompts must follow the Table III templates (build them with
// the mqo package or the prompt package).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/batch"
	"repro/internal/cliflags"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/predictors"
	"repro/internal/promptcache"
	"repro/internal/serve"
	"repro/internal/tag"
	"repro/internal/xrand"
)

func main() {
	var (
		dataset   = flag.String("dataset", "cora", "dataset whose vocabulary/classes back the simulator")
		profile   = flag.String("profile", "gpt-3.5", "simulated profile: gpt-3.5 or gpt-4o-mini")
		seed      = flag.Uint64("seed", 1, "deterministic seed")
		scale     = flag.Float64("scale", 1, "dataset scale factor")
		addr      = flag.String("addr", ":8080", "listen address")
		apiKey    = flag.String("api-key", "", "require this Bearer token when non-empty")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests on SIGINT/SIGTERM")
		traceCap  = flag.Int("trace-capacity", obs.DefaultTraceCapacity, "request spans retained by /debug/traces")
		accessLog = flag.Bool("access-log", true, "log one JSON line per request to stderr")
		traceRate = flag.Float64("trace-sample", 1, "fraction of requests traced with span trees and ledgers (0 = none, 1 = all)")
		sloP99    = flag.Duration("slo-latency-p99", 0, "p99 request-latency objective for /debug/slo (0 = disabled)")
		slowQuery = flag.Duration("slow-query", 0, "log requests slower than this with their full stage breakdown (0 = disabled)")
		cacheDir  = flag.String("cache-dir", "", "persistent prompt-cache directory; repeated prompts are served from disk across restarts (empty = no cache)")
		cacheMax  = flag.Int64("cache-max-bytes", 0, "prompt-cache byte budget across shards (0 = unbounded)")
		cacheTTL  = flag.Duration("cache-ttl", 0, "prompt-cache entry lifetime (0 = never expires)")

		upstreams     = flag.String("upstreams", "", "comma-separated base URLs of upstream OpenAI-compatible endpoints; when set, llmserve proxies through the health-aware replica pool instead of serving the local simulator")
		upstreamModel = flag.String("upstream-model", "sim", "model identifier sent to the -upstreams endpoints")
		hedge         = flag.Bool("hedge", false, "race a second upstream when the first outlives -hedge-after (needs >= 2 -upstreams)")
		hedgeAfter    = flag.Duration("hedge-after", 0, "hedge trigger delay (0 = 50ms default)")
		affinity      = flag.Bool("affinity", false, "route each prompt to its cache-affine upstream (rendezvous over prompt-cache keys), so N llmserve nodes each keep their own cache shard warm")
		breakerN      = flag.Int("breaker", 0, "consecutive transient failures that eject an upstream from rotation (0 = disabled)")
		breakerCool   = flag.Duration("breaker-cooldown", 0, "how long an ejected upstream stays out before probing (0 = 30s default)")
	)
	var sv cliflags.Serve
	sv.Register(flag.CommandLine)
	flag.Parse()

	spec, err := tag.SpecByName(*dataset)
	if err != nil {
		log.Fatalf("llmserve: %v", err)
	}
	g := tag.Generate(spec, *seed, tag.Options{Scale: *scale})

	var p llm.Profile
	switch *profile {
	case "gpt-3.5":
		p = llm.GPT35()
	case "gpt-4o-mini":
		p = llm.GPT4oMini()
	default:
		log.Fatalf("llmserve: unknown profile %q (want gpt-3.5 or gpt-4o-mini)", *profile)
	}

	reg := obs.NewRegistry()
	reg.SetTraceCapacity(*traceCap)
	reg.SetTraceSample(*traceRate)
	if *sloP99 > 0 {
		reg.SetSLO(obs.SLO{Name: "request_latency_p99", Objective: *sloP99, Percentile: 0.99})
	}
	if *slowQuery > 0 {
		reg.SetSlowQueryLog(*slowQuery, obs.NewLogger(os.Stderr))
	}
	obs.SetDefault(reg)

	sim := llm.NewSim(p, g.Vocab, g.Classes, *seed)
	sim.SetObserver(reg)
	var served llm.Predictor = sim
	if *upstreams != "" {
		// Multi-upstream mode: fan requests across N OpenAI-compatible
		// backends through the replica pool (power-of-two-choices
		// routing, per-upstream breakers, optional hedging). The local
		// simulator is not used.
		var backends []llm.Predictor
		for _, u := range strings.Split(*upstreams, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			hp, err := llm.NewHTTPPredictor(llm.HTTPConfig{BaseURL: u, Model: *upstreamModel})
			if err != nil {
				log.Fatalf("llmserve: upstream %q: %v", u, err)
			}
			backends = append(backends, hp)
		}
		pcfg := pool.Config{
			Hedge:      *hedge,
			HedgeAfter: *hedgeAfter,
			Breaker:    batch.BreakerConfig{Threshold: *breakerN, Cooldown: *breakerCool},
			Obs:        reg,
		}
		if *affinity {
			// Each upstream owns the rendezvous shard of the prompt-key
			// space its own server-side cache has been accumulating, so
			// a warm prompt is never re-bought from a cold upstream.
			pcfg.Scorer = &pool.Affinity{}
		}
		pl, err := pool.New(backends, pcfg)
		if err != nil {
			log.Fatalf("llmserve: building upstream pool: %v", err)
		}
		served = pl
		fmt.Printf("llmserve: pooling %d upstreams (hedge=%v affinity=%v)\n", pl.Size(), *hedge, *affinity)
	}
	if *cacheDir != "" {
		// Server-side persistent cache: repeated prompts answer from disk
		// without touching the simulator, across restarts.
		pcache, err := promptcache.Open(*cacheDir, promptcache.Config{
			MaxBytes: *cacheMax, TTL: *cacheTTL, Obs: reg,
		})
		if err != nil {
			log.Fatalf("llmserve: opening prompt cache: %v", err)
		}
		defer pcache.Close()
		served = promptcache.Wrap(served, pcache)
	}
	h := llm.NewHandler(served)
	h.RequireKey = *apiKey
	h.Obs = reg

	// The online serving tier fronts the same predictor stack with
	// micro-batched, coalesced MQO plans; nil unless -serve is set.
	var tier *serve.Server
	if sv.Enabled {
		method, err := predictors.ByName(sv.Method)
		if err != nil {
			log.Fatalf("llmserve: -serve-method: %v", err)
		}
		split := g.SplitPerClass(xrand.New(*seed+1), sv.Labeled, 0)
		pctx := &predictors.Context{
			Graph: g,
			Known: predictors.KnownFromSplit(g, split),
			M:     sv.M,
			Seed:  *seed,
			Obs:   reg,
		}
		scfg := sv.Config()
		scfg.Obs = reg
		tier, err = serve.New(pctx, method, served, scfg)
		if err != nil {
			log.Fatalf("llmserve: serving tier: %v", err)
		}
		fmt.Printf("llmserve: online query tier on %s (method=%s window=%v queue=%d)\n",
			serve.QueryPath, method.Name(), scfg.Window, scfg.MaxQueue)
	}

	var draining atomic.Bool
	start := time.Now()
	mux := http.NewServeMux()
	mux.Handle(llm.ChatCompletionsPath, h)
	if tier != nil {
		mux.Handle(serve.QueryPath, serve.Handler(tier))
	}
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/traces", obs.TraceHandler(reg))
	mux.Handle("/debug/querytrace", obs.QueryTraceHandler(reg))
	mux.Handle("/debug/slo", obs.SLOHandler(reg))
	mux.Handle("/healthz", &healthz{
		model:    p.Name,
		dataset:  g.Display,
		start:    start,
		requests: h.Requests,
		draining: &draining,
	})
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	var handler http.Handler = mux
	if *accessLog {
		handler = obs.AccessLog(obs.NewLogger(os.Stderr), mux)
	}

	fmt.Printf("llmserve: %s profile over %s (%d nodes, %d classes) on %s%s (metrics on /metrics, health on /healthz)\n",
		p.Name, g.Display, g.NumNodes(), len(g.Classes), *addr, llm.ChatCompletionsPath)
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Timeouts guarantee a half-sent or stalled request cannot pin
		// a connection (and the predictor mutex queue) forever.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	// Serve until SIGINT/SIGTERM, then drain: stop accepting, let
	// in-flight requests finish within the drain deadline, and only then
	// exit. The old log.Fatal(ListenAndServe()) hard-killed mid-request.
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("llmserve: %v", err)
	case sig := <-sigCh:
		fmt.Printf("llmserve: %v received, draining for up to %v...\n", sig, *drain)
		// Flip /healthz to 503 before the listener starts refusing, so
		// load balancers stop routing while in-flight work drains.
		draining.Store(true)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("llmserve: shutdown: %v", err)
		}
		if tier != nil {
			// HTTP requests are gone; answer anything still queued in
			// the serving tier, then stop its batcher.
			tier.Close()
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("llmserve: %v", err)
		}
		fmt.Printf("llmserve: drained, %d requests served\n", h.Requests())
	}
}
