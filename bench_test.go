// Benchmarks regenerating every table and figure of the paper's
// evaluation section (one testing.B per artifact), plus micro-benches
// for the primitives the strategies pay for at scale: prompt building,
// token counting, inadequacy scoring, plan construction and boosting
// rounds.
//
// Each BenchmarkTableN/BenchmarkFigN runs the corresponding experiment
// at reduced (Fast) scale — the same code path `mqobench -exp <id>`
// executes at paper scale — and reports tokens metered per query batch
// where meaningful.
package repro_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/experiments"
	"repro/mqo"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := e.Run(experiments.Config{Seed: 1, Fast: true})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(out) == 0 {
			b.Fatalf("%s produced no output", id)
		}
	}
}

// Table II: dataset statistics (five generated datasets).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// Fig. 2 / Section IV: empirical PID decomposition of I(t,N;y).
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// Fig. 3: information gain of neighbor labels (motivation experiment).
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// Table IV: token pruning across methods (Q1).
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// Fig. 7: pruning vs random under token budgets (Q2).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// Table V: token reduction potential (Q3).
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// Table VI: text inadequacy of saturated vs non-saturated nodes (Q4).
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// Fig. 8: pseudo-label utilization with/without scheduling (Q5).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// Table VII: query boosting across methods (Q6).
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7") }

// Table VIII: joint pruning + boosting (Q7).
func BenchmarkTable8(b *testing.B) { benchExperiment(b, "table8") }

// Table IX: strategies on instruction-tuned backbones (Q8).
func BenchmarkTable9(b *testing.B) { benchExperiment(b, "table9") }

// Table X: link prediction (Q9).
func BenchmarkTable10(b *testing.B) { benchExperiment(b, "table10") }

// Paradigm comparison: trained GNN baselines vs LLMs as predictors.
func BenchmarkGNNBaseline(b *testing.B) { benchExperiment(b, "gnn-baseline") }

// Ablation: inadequacy channels (entropy-only vs bias-only vs merged).
func BenchmarkAblationInadequacyChannels(b *testing.B) { benchExperiment(b, "ablation-channels") }

// Ablation: scheduling policies (paper criterion vs random vs greedy).
func BenchmarkAblationScheduling(b *testing.B) { benchExperiment(b, "ablation-scheduling") }

// Ablation: boosting threshold sensitivity (γ1 × γ2 sweep).
func BenchmarkAblationGamma(b *testing.B) { benchExperiment(b, "ablation-gamma") }

// Ablation: neighbor cap M — accuracy vs token cost.
func BenchmarkAblationM(b *testing.B) { benchExperiment(b, "ablation-m") }

// Ablation: SNS similarity backend (TF-IDF vs skip-gram vs BoW).
func BenchmarkAblationEncoder(b *testing.B) { benchExperiment(b, "ablation-encoder") }

// Section I: full-graph classification priced at the paper's rates.
func BenchmarkCostProjection(b *testing.B) { benchExperiment(b, "cost-projection") }

// Section II-C: serving-level prefix sharing vs graph-aware pruning.
func BenchmarkPrefixSharing(b *testing.B) { benchExperiment(b, "prefix-sharing") }

// --- Micro-benchmarks of the per-query primitives -------------------

func benchWorkload(b *testing.B) (*mqo.Workload, *mqo.Sim) {
	b.Helper()
	g, err := mqo.GenerateDatasetScaled("cora", 1, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	return mqo.NewWorkload(g, 20, 200, 4, 1), mqo.NewSim(mqo.GPT35(), g, 1)
}

// BenchmarkExecutePlain measures raw multi-query execution: neighbor
// selection + prompt build + simulated LLM call, per query batch.
func BenchmarkExecutePlain(b *testing.B) {
	w, _ := benchWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := mqo.NewSim(mqo.GPT35(), w.Graph, 1)
		res, err := mqo.Execute(w.Context(), mqo.KHopRandom{K: 1}, p, mqo.Plan{Queries: w.Queries})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Meter.InputTokens())/float64(len(w.Queries)), "tokens/query")
	}
}

// BenchmarkBoostRounds measures Algorithm 2's scheduling overhead on
// top of plain execution.
func BenchmarkBoostRounds(b *testing.B) {
	w, _ := benchWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := mqo.NewSim(mqo.GPT35(), w.Graph, 1)
		_, trace, err := mqo.Boost(w.Context(), mqo.KHopRandom{K: 2}, p,
			mqo.Plan{Queries: w.Queries}, mqo.DefaultBoostConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(trace)), "rounds")
	}
}

// BenchmarkBatchExecutor measures concurrent batch throughput over the
// serialized simulator (workers + cache + budget accounting overhead).
func BenchmarkBatchExecutor(b *testing.B) {
	w, _ := benchWorkload(b)
	ctx := w.Context()
	reqs := make([]mqo.BatchRequest, len(w.Queries))
	for i, v := range w.Queries {
		reqs[i] = mqo.BatchRequest{ID: fmt.Sprint(v), Prompt: mqo.BuildPrompt(ctx, v, nil, false)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec, err := mqo.NewBatchExecutor(
			mqo.SerializePredictor(mqo.NewSim(mqo.GPT35(), w.Graph, 1)),
			mqo.BatchConfig{Workers: 8})
		if err != nil {
			b.Fatal(err)
		}
		res, err := exec.Execute(context.Background(), reqs)
		if err != nil || res.Failed > 0 {
			b.Fatalf("batch failed: %v / %d", err, res.Failed)
		}
		b.ReportMetric(float64(len(reqs)), "queries/op")
	}
}

// BenchmarkExecuteColdVsWarm measures what the persistent prompt cache
// buys: the same batch against a cold disk cache (every query pays the
// simulated predictor and is written through) versus a warm one (every
// query answers from disk; the warm sub-benchmark fails if even one
// predictor call leaks through).
func BenchmarkExecuteColdVsWarm(b *testing.B) {
	w, _ := benchWorkload(b)
	ctx := w.Context()
	reqs := make([]mqo.BatchRequest, len(w.Queries))
	for i, v := range w.Queries {
		reqs[i] = mqo.BatchRequest{ID: fmt.Sprint(v), Prompt: mqo.BuildPrompt(ctx, v, nil, false)}
	}
	execOnce := func(b *testing.B, cache *mqo.PromptCache, wantHits int) {
		b.Helper()
		exec, err := mqo.NewBatchExecutor(
			mqo.SerializePredictor(mqo.NewSim(mqo.GPT35(), w.Graph, 1)),
			mqo.BatchConfig{Workers: 8, Disk: cache})
		if err != nil {
			b.Fatal(err)
		}
		res, err := exec.Execute(context.Background(), reqs)
		if err != nil || res.Failed > 0 {
			b.Fatalf("batch failed: %v / %d", err, res.Failed)
		}
		if res.CacheHits < wantHits {
			b.Fatalf("%d cache hits, want >= %d", res.CacheHits, wantHits)
		}
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cache, err := mqo.OpenPromptCache(b.TempDir(), mqo.PromptCacheConfig{})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			execOnce(b, cache, 0)
			b.StopTimer()
			cache.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(len(reqs)), "queries/op")
	})

	b.Run("warm", func(b *testing.B) {
		cache, err := mqo.OpenPromptCache(b.TempDir(), mqo.PromptCacheConfig{})
		if err != nil {
			b.Fatal(err)
		}
		defer cache.Close()
		execOnce(b, cache, 0) // populate
		before := cache.Stats()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			execOnce(b, cache, len(reqs)) // every query must hit
		}
		b.StopTimer()
		// Zero predictor calls on the warm path: no new entries appeared,
		// and not a single disk lookup missed.
		after := cache.Stats()
		if after.Entries != before.Entries || after.Misses != before.Misses {
			b.Fatalf("warm runs changed the cache: %+v -> %+v", before, after)
		}
		b.ReportMetric(float64(len(reqs)), "queries/op")
	})
}

// BenchmarkHTTPRoundTrip measures one full chat-completions round trip
// (client encode → server → sim → decode) over a local socket.
func BenchmarkHTTPRoundTrip(b *testing.B) {
	w, _ := benchWorkload(b)
	srv := httptest.NewServer(mqo.NewSimHandler(mqo.NewSim(mqo.GPT35(), w.Graph, 1)))
	defer srv.Close()
	client, err := mqo.NewHTTPPredictor(mqo.HTTPConfig{BaseURL: srv.URL, Model: "sim"})
	if err != nil {
		b.Fatal(err)
	}
	promptText := mqo.BuildPrompt(w.Context(), w.Queries[0], nil, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Query(promptText); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitInadequacy measures Algorithm 1's fixed overhead:
// surrogate training, LLM bias calibration, channel merging.
func BenchmarkFitInadequacy(b *testing.B) {
	w, p := benchWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mqo.FitInadequacy(w.Graph, w.Labeled, p, "paper", mqo.DefaultInadequacyConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrunePlan measures plan construction (score + sort + mark)
// once the measure is fitted.
func BenchmarkPrunePlan(b *testing.B) {
	w, p := benchWorkload(b)
	iq, err := mqo.FitInadequacy(w.Graph, w.Labeled, p, "paper", mqo.DefaultInadequacyConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := mqo.PrunePlan(iq, w.Graph, w.Queries, 0.2)
		if len(plan.Prune) == 0 {
			b.Fatal("empty prune set")
		}
	}
}
