// Boosting: trace query boosting (Algorithm 2) round by round. Each
// round executes the queries whose neighbor selections carry at least
// γ1 visible labels with at most γ2 distinct values; their predictions
// become pseudo-labels that enrich the prompts of later rounds. When no
// query qualifies, the thresholds relax.
//
//	go run ./examples/boosting
package main

import (
	"fmt"
	"log"

	"repro/mqo"
)

func main() {
	g, err := mqo.GenerateDatasetScaled("cora", 3, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	w := mqo.NewWorkload(g, 20, 250, 4, 3)
	method := mqo.KHopRandom{K: 2}

	// Baseline: same queries, arbitrary order, no pseudo-label feedback.
	base, err := mqo.Optimize(w, method, mqo.NewSim(mqo.GPT35(), g, 3), mqo.Options{})
	if err != nil {
		log.Fatal(err)
	}

	boosted, err := mqo.Optimize(w, method, mqo.NewSim(mqo.GPT35(), g, 3),
		mqo.Options{Boost: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query boosting on %s: %d queries, γ1=%d γ2=%d\n\n",
		g.Display, len(w.Queries),
		mqo.DefaultBoostConfig().Gamma1, mqo.DefaultBoostConfig().Gamma2)
	fmt.Printf("%-6s %-4s %-4s %-9s %-12s %-12s\n",
		"round", "γ1", "γ2", "executed", "pseudo-uses", "known labels")
	for _, r := range boosted.Rounds {
		fmt.Printf("%-6d %-4d %-4d %-9d %-12d %-12d\n",
			r.Round, r.Gamma1, r.Gamma2, r.Executed, r.PseudoUses, r.KnownEntries)
	}

	fmt.Printf("\nbaseline accuracy:  %5.1f%%\n", 100*base.Accuracy)
	fmt.Printf("boosted accuracy:   %5.1f%%  (%d pseudo-label uses, %d rounds)\n",
		100*boosted.Accuracy, boosted.Results.PseudoLabelUses, boosted.Results.Rounds)
	extra := boosted.Results.Meter.InputTokens() - base.Results.Meter.InputTokens()
	fmt.Printf("extra input tokens: %d (pseudo-labels are just short class names)\n", extra)
}
