// Resume: the operations story for large batches. A classification job
// dies when its token budget runs out; the JSONL audit log doubles as
// a checkpoint, so the re-run replays the log and only bills the
// queries that never completed.
//
//	go run ./examples/resume
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/mqo"
)

func main() {
	g, err := mqo.GenerateDatasetScaled("cora", 4, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	w := mqo.NewWorkload(g, 20, 200, 4, 4)
	ctx := w.Context()
	method := mqo.KHopRandom{K: 1}

	var requests []mqo.BatchRequest
	for _, v := range w.Queries {
		requests = append(requests, mqo.BatchRequest{
			ID:     fmt.Sprint(v),
			Prompt: mqo.BuildPrompt(ctx, v, method.Select(ctx, v), false),
		})
	}

	// First attempt: a budget that covers roughly half the batch.
	var auditLog bytes.Buffer
	sim := mqo.SerializePredictor(mqo.NewSim(mqo.GPT35(), g, 4))
	exec1, err := mqo.NewBatchExecutor(sim, mqo.BatchConfig{
		Workers:      4,
		BudgetTokens: 55_000,
		Log:          &auditLog,
	})
	if err != nil {
		log.Fatal(err)
	}
	res1, err := exec1.Execute(context.Background(), requests)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first run:  %d done, %d skipped when the %d-token budget ran out (spent %d)\n",
		len(res1.Outcomes)-res1.Skipped, res1.Skipped, 55_000, res1.TokensUsed)

	// Recovery: replay the audit log, trim the request list, run the
	// remainder with a fresh budget. Nothing already paid for is
	// re-billed.
	done, err := mqo.ReplayBatchLog(&auditLog)
	if err != nil {
		log.Fatal(err)
	}
	todo, recovered := mqo.FilterDoneRequests(requests, done)
	fmt.Printf("replay:     recovered %d outcomes from the log, %d queries left to run\n",
		len(recovered), len(todo))

	exec2, err := mqo.NewBatchExecutor(sim, mqo.BatchConfig{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	res2, err := exec2.Execute(context.Background(), todo)
	if err != nil {
		log.Fatal(err)
	}

	// Stitch the two runs together and score.
	correct := 0
	for _, v := range w.Queries {
		id := fmt.Sprint(v)
		o, ok := recovered[id]
		if !ok {
			o = res2.Outcomes[id]
		}
		if o.Err == nil && o.Response.Category == g.Classes[g.Nodes[v].Label] {
			correct++
		}
	}
	fmt.Printf("second run: %d queries, %d tokens — no re-billing of finished work\n",
		len(todo), res2.TokensUsed)
	fmt.Printf("combined accuracy over all %d queries: %.1f%%\n",
		len(w.Queries), 100*float64(correct)/float64(len(w.Queries)))
}
