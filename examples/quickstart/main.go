// Quickstart: classify 200 Cora papers with a black-box LLM, then do
// it again with the paper's two optimizations — token pruning
// (Algorithm 1) and query boosting (Algorithm 2) — and compare
// accuracy and token cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/mqo"
)

func main() {
	// A synthetic Cora at quarter scale: ~680 papers, 7 classes, text
	// attributes whose informativeness varies per node (some nodes are
	// "saturated" — their own text suffices; others need neighbor cues).
	g, err := mqo.GenerateDatasetScaled("cora", 1, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s — %d nodes, %d edges, %d classes\n\n",
		g.Display, g.NumNodes(), g.NumEdges(), len(g.Classes))

	// The paper's protocol: 20 labeled nodes per class, a batch of
	// query nodes, at most M=4 neighbors per prompt.
	w := mqo.NewWorkload(g, 20, 200, 4, 1)
	method := mqo.SNS{} // similarity-ranked neighbor selection

	run := func(name string, opt mqo.Options) *mqo.Report {
		// A fresh simulated LLM per run so token meters don't mix.
		p := mqo.NewSim(mqo.GPT35(), g, 1)
		rep, err := mqo.Optimize(w, method, p, opt)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-22s accuracy %5.1f%%   input tokens %7d   prompts w/ neighbors %d\n",
			name, 100*rep.Accuracy, rep.Results.Meter.InputTokens(), rep.Results.Equipped)
		return rep
	}

	base := run("unoptimized", mqo.Options{})
	both := run("w/ prune & boost", mqo.Options{
		Prune: true, Tau: 0.2, // omit neighbor text for the 20% most saturated queries
		Boost: true, // schedule rounds so pseudo-labels enrich later prompts
	})

	saved := base.Results.Meter.InputTokens() - both.Results.Meter.InputTokens()
	fmt.Printf("\ntokens saved: %d (%.1f%%), accuracy change: %+.1f points\n",
		saved, 100*float64(saved)/float64(base.Results.Meter.InputTokens()),
		100*(both.Accuracy-base.Accuracy))
}
