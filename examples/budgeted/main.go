// Budgeted: spend a shrinking token budget on a fixed batch of queries
// and watch how accuracy degrades — comparing the paper's inadequacy-
// ranked token pruning against random pruning (the Fig. 7 experiment,
// in miniature).
//
// The budget determines τ, the fraction of queries whose prompt must
// omit neighbor text. Inadequacy-ranked pruning spends that sacrifice
// on the queries that need neighbors least.
//
//	go run ./examples/budgeted
package main

import (
	"fmt"
	"log"

	"repro/mqo"
)

func main() {
	g, err := mqo.GenerateDatasetScaled("citeseer", 7, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	w := mqo.NewWorkload(g, 20, 200, 4, 7)
	method := mqo.KHopRandom{K: 1}

	// Estimate the budget arithmetic of Section V-C: average tokens per
	// full query and per neighbor-text block.
	perQuery, perNeighbor := mqo.EstimateQueryTokens(w.Context(), method, w.Queries, 0)
	fmt.Printf("%s: avg %.0f tokens/query, %.0f of them neighbor text\n\n",
		g.Display, perQuery, perNeighbor)
	full := float64(len(w.Queries)) * perQuery

	fmt.Printf("%-8s %-6s %-22s %-22s\n", "budget", "τ", "inadequacy pruning", "random pruning")
	for _, frac := range []float64{1.00, 0.90, 0.80, 0.70, 0.60} {
		budget := frac * full
		tau, ok := mqo.TauForBudget(budget, len(w.Queries), perQuery, perNeighbor)
		if !ok {
			fmt.Printf("%-8.0f infeasible even at full pruning; skipping\n", budget)
			continue
		}

		ours, err := mqo.Optimize(w, method, mqo.NewSim(mqo.GPT35(), g, 7),
			mqo.Options{Prune: true, Budget: budget})
		if err != nil {
			log.Fatal(err)
		}
		random, err := mqo.Optimize(w, method, mqo.NewSim(mqo.GPT35(), g, 7),
			mqo.Options{Prune: true, Budget: budget, RandomPrune: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.0f %-6.2f %5.1f%% (%6d tokens)  %5.1f%% (%6d tokens)\n",
			budget, tau,
			100*ours.Accuracy, ours.Results.Meter.InputTokens(),
			100*random.Accuracy, random.Results.Meter.InputTokens())
	}
	fmt.Println("\nAt every constrained budget the ranked strategy should match or")
	fmt.Println("beat random pruning: it sacrifices neighbor text only where the")
	fmt.Println("node's own text already decides the class.")
}
