// Gnncompare: the paper's Fig. 1 paradigm comparison as code. A
// trained GCN and label propagation (the GNN path) face the
// training-free "LLMs as predictors" path — with and without the
// paper's optimizations — on the same dataset and split.
//
//	go run ./examples/gnncompare
package main

import (
	"fmt"
	"log"

	"repro/mqo"
)

func main() {
	g, err := mqo.GenerateDatasetScaled("cora", 9, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	w := mqo.NewWorkload(g, 20, 200, 4, 9)
	fmt.Printf("%s: %d labeled nodes, %d queries\n\n", g.Display, len(w.Labeled), len(w.Queries))

	// GNN path: needs the whole graph, features and a training run.
	gcn, err := mqo.TrainGCN(g, w.Labeled, 256, mqo.GCNConfig{Epochs: 100, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	lp, err := mqo.LabelProp(g, w.Labeled, 30, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	lpOK := 0
	for _, v := range w.Queries {
		if lp[v] == g.Nodes[v].Label {
			lpOK++
		}
	}

	fmt.Printf("%-28s %8s %14s %s\n", "approach", "accuracy", "input tokens", "needs")
	fmt.Printf("%-28s %7.1f%% %14d %s\n", "label propagation",
		100*float64(lpOK)/float64(len(w.Queries)), 0, "full graph")
	fmt.Printf("%-28s %7.1f%% %14d %s\n", "GCN (trained)",
		100*gcn.Accuracy(g, w.Queries), 0, "full graph + training")

	// LLM path: per-node queries, no training, priced in tokens.
	for _, cfg := range []struct {
		name string
		opts mqo.Options
	}{
		{"LLM + SNS", mqo.Options{}},
		{"LLM + SNS, prune & boost", mqo.Options{Prune: true, Tau: 0.2, Boost: true}},
	} {
		rep, err := mqo.Optimize(w, mqo.SNS{}, mqo.NewSim(mqo.GPT35(), g, 9), cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %7.1f%% %14d %s\n", cfg.name,
			100*rep.Accuracy, rep.Results.Meter.InputTokens(), "nothing (per-node queries)")
	}

	fmt.Println("\nThe LLM path trades tokens for zero training and per-node operation;")
	fmt.Println("the paper's strategies shrink that token bill without giving up accuracy.")
}
