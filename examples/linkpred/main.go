// Linkpred: apply both strategies to link prediction (Section VI-J,
// Table X). The LLM judges whether two papers cite each other from
// their texts plus each endpoint's visible neighbor links. Pruning
// drops the link lists for pairs whose text alone decides confidently;
// boosting feeds predicted positive links back as pseudo-links.
//
//	go run ./examples/linkpred
package main

import (
	"fmt"
	"log"

	"repro/mqo"
)

func main() {
	g, err := mqo.GenerateDatasetScaled("cora", 5, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	d, err := mqo.NewLinkDataset(g, 200, 5) // 100 held-out edges + 100 non-edges
	if err != nil {
		log.Fatal(err)
	}
	pruner, err := mqo.FitPairInadequacy(d, 150, 5)
	if err != nil {
		log.Fatal(err)
	}

	res, err := mqo.LinkVariants(d, mqo.NewSimLink(g, 5), 4, 0.2, 3, pruner)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("link prediction on %s: %d test pairs\n\n", g.Display, len(d.Test))
	fmt.Printf("%-10s %-10s %-14s %-8s %-7s\n",
		"variant", "accuracy", "input tokens", "pruned", "rounds")
	for _, name := range []string{"vanilla", "base", "boost", "prune", "both"} {
		r := res[name]
		fmt.Printf("%-10s %8.1f%% %-14d %-8d %-7d\n",
			name, 100*r.Accuracy, r.Meter.InputTokens(), r.Pruned, r.Rounds)
	}
	fmt.Println("\nExpected shape (Table X): boost > base; prune ≈ base with fewer")
	fmt.Println("tokens; both combines the gains.")
}
