// Dynamic: the intro's motivating scenario for "LLMs as predictors" —
// nodes arriving over time. A GNN must be retrained (and must hold the
// full graph) to serve newcomers; the LLM path classifies each node on
// arrival with one query, and — using the paper's boosting idea — each
// prediction becomes a pseudo-label that helps later arrivals that
// cite it.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/mqo"
)

func main() {
	g, err := mqo.GenerateDatasetScaled("cora", 6, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	w := mqo.NewWorkload(g, 20, 300, 4, 6)
	p := mqo.NewSim(mqo.GPT35(), g, 6)
	method := mqo.KHopRandom{K: 1}

	// Simulate an arrival stream: the query nodes show up one at a
	// time, ordered by ID as a stand-in for publication time.
	arrivals := append([]mqo.NodeID(nil), w.Queries...)
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i] < arrivals[j] })

	ctx := w.Context()
	correct, enriched := 0, 0
	for _, v := range arrivals {
		sel := method.Select(ctx, v)
		for _, s := range sel {
			if s.Label != "" {
				enriched++
				break
			}
		}
		resp, err := p.Query(mqo.BuildPrompt(ctx, v, sel, false))
		if err != nil {
			log.Fatal(err)
		}
		if resp.Category == g.Classes[g.Nodes[v].Label] {
			correct++
		}
		// The newcomer's prediction immediately becomes visible to
		// every later arrival that selects it as a neighbor.
		ctx.Known[v] = resp.Category
	}

	fmt.Printf("streamed %d arrivals through %q\n", len(arrivals), p.Name())
	fmt.Printf("accuracy: %.1f%%   prompts enriched by earlier arrivals: %d\n",
		100*float64(correct)/float64(len(arrivals)), enriched)
	fmt.Printf("input tokens: %d (no retraining, no full-graph pass)\n",
		p.Meter().InputTokens())

	// Contrast: a GNN trained before the stream cannot use arrivals'
	// edges without retraining; with scheduling (Algorithm 2) instead
	// of arrival order, pseudo-labels are placed even better.
	w2 := mqo.NewWorkload(g, 20, 300, 4, 6)
	boosted, err := mqo.Optimize(w2, method, mqo.NewSim(mqo.GPT35(), g, 6),
		mqo.Options{Boost: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame stream, scheduled by Algorithm 2 instead of arrival order:\n")
	fmt.Printf("accuracy: %.1f%%   pseudo-label uses: %d\n",
		100*boosted.Accuracy, boosted.Results.PseudoLabelUses)
}
