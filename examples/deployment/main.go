// Deployment: the production shape of the pipeline. A simulated LLM is
// served behind an OpenAI-compatible HTTP endpoint; a concurrent batch
// executor with a rate limit, retries, a response cache and a hard
// token budget drives the optimized query plan against it; and the
// final bill is reported in dollars at the paper's price points.
//
//	go run ./examples/deployment
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"repro/mqo"
)

func main() {
	g, err := mqo.GenerateDatasetScaled("cora", 2, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	w := mqo.NewWorkload(g, 20, 150, 4, 2)

	// 1. Serve the model over HTTP (in production this is the API
	// vendor; here it is llmserve's handler in-process).
	srv := httptest.NewServer(mqo.NewSimHandler(mqo.NewSim(mqo.GPT35(), g, 2)))
	defer srv.Close()
	remote, err := mqo.NewHTTPPredictor(mqo.HTTPConfig{
		BaseURL: srv.URL, Model: "gpt-3.5-turbo",
		RetryBaseDelay: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Plan the batch: prune the 20% most saturated queries.
	ctx := w.Context()
	method := mqo.KHopRandom{K: 1}
	iq, err := mqo.FitInadequacy(g, w.Labeled, remote, "paper", mqo.DefaultInadequacyConfig())
	if err != nil {
		log.Fatal(err)
	}
	plan := mqo.PrunePlan(iq, g, w.Queries, 0.2)

	// 3. Build the prompt batch and execute it concurrently with
	// operational guardrails.
	var requests []mqo.BatchRequest
	var baseline mqo.TokenMeter
	for _, v := range w.Queries {
		sel := method.Select(ctx, v)
		full := mqo.BuildPrompt(ctx, v, sel, false)
		baseline.AddQuery(mqo.CountTokens(full), 4)
		p := full
		if plan.Prune[v] {
			p = mqo.BuildPrompt(ctx, v, nil, false) // neighbor text omitted
		}
		requests = append(requests, mqo.BatchRequest{ID: fmt.Sprint(v), Prompt: p})
	}
	exec, err := mqo.NewBatchExecutor(remote, mqo.BatchConfig{
		Workers: 8,
		QPS:     500,
		Cache:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := exec.Execute(context.Background(), requests)
	if err != nil {
		log.Fatal(err)
	}

	correct := 0
	for _, v := range w.Queries {
		if o := res.Outcomes[fmt.Sprint(v)]; o.Err == nil &&
			o.Response.Category == g.Classes[g.Nodes[v].Label] {
			correct++
		}
	}
	fmt.Printf("executed %d queries in %v: %d ok, %d failed, %d skipped, accuracy %.1f%%\n",
		len(requests), time.Since(start).Round(time.Millisecond),
		len(requests)-res.Failed-res.Skipped, res.Failed, res.Skipped,
		100*float64(correct)/float64(len(w.Queries)))

	// 4. Price the run against the unpruned baseline. The batch's own
	// spend is what pruning optimizes; the inadequacy calibration
	// queries are a separate, fixed overhead reported alongside.
	pricing, err := mqo.LookupPricing("gpt-3.5-turbo")
	if err != nil {
		log.Fatal(err)
	}
	var optimized mqo.TokenMeter
	for _, o := range res.Outcomes {
		if o.Err == nil {
			optimized.AddQuery(o.Response.InputTokens, o.Response.OutputTokens)
		}
	}
	fmt.Println(mqo.CompareCost(pricing, baseline, optimized))
	calibration := *remote.Meter()
	fmt.Printf("one-time calibration overhead: %d queries, %d tokens ($%.4f)\n",
		calibration.Queries()-len(requests),
		calibration.Total()-optimized.Total(),
		pricing.Cost(calibration.InputTokens()-optimized.InputTokens(),
			calibration.OutputTokens()-optimized.OutputTokens()))

	// 5. Project the savings to the paper's industrial scale.
	perQuery := float64(baseline.InputTokens()) / float64(len(requests))
	prunedPerQuery := float64(optimized.InputTokens()) / float64(len(requests))
	for _, scale := range []int64{1_000_000, 10_000_000} {
		full, _ := mqo.ProjectCost(pricing, scale, perQuery)
		opt, _ := mqo.ProjectCost(pricing, scale, prunedPerQuery)
		fmt.Printf("at %d queries: $%.0f -> $%.0f (saving $%.0f)\n",
			scale, full.TotalUSD, opt.TotalUSD, full.TotalUSD-opt.TotalUSD)
	}
}
